package core

import (
	"fmt"
	"strconv"
	"strings"

	"cachecost/internal/catalog"
	"cachecost/internal/cluster"
	"cachecost/internal/consistency"
	"cachecost/internal/linkedcache"
	"cachecost/internal/meter"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/storage"
	"cachecost/internal/wire"
)

// CatalogMode selects which Unity Catalog variant the service runs.
type CatalogMode int

// The two §5.4 variants.
const (
	// ModeObject: production shape — each read composes the rich object
	// from up to 8 SQL queries (Unity Catalog-Object).
	ModeObject CatalogMode = iota
	// ModeKV: heavily denormalized — each read is a single row lookup
	// plus deserialization (Unity Catalog-KV).
	ModeKV
)

// String implements fmt.Stringer.
func (m CatalogMode) String() string {
	if m == ModeObject {
		return "object"
	}
	return "kv"
}

// CatalogServiceConfig assembles a governance service deployment.
type CatalogServiceConfig struct {
	ServiceConfig
	// Mode selects Object vs KV reads.
	Mode CatalogMode
	// Tables is the governed-table population. Default 500 at experiment
	// scale.
	Tables int
	// StatsBytes fixes the per-table stats payload (0 = Figure 3a
	// distribution).
	StatsBytes int
	// Seed drives the corpus generator.
	Seed int64
}

// CatalogService deploys the rich-object application under an
// architecture. The linked cache holds live *catalog.TableInfo objects;
// the remote cache holds their serialized form — that asymmetry is the
// §5.4 comparison.
type CatalogService struct {
	cfg     CatalogServiceConfig
	m       *meter.Meter
	appComp *meter.Component

	node *storage.Node
	app  *catalog.App

	rcServer *remotecache.Server
	rc       *remotecache.Client

	lc      *linkedcache.Cache[*catalog.TableInfo]
	vc      *consistency.VersionedCache[*catalog.TableInfo]
	oc      *consistency.OwnedCache[*catalog.TableInfo]
	sharder *cluster.Sharder

	front *rpc.Server
}

// NewCatalogService builds and seeds the deployment.
func NewCatalogService(cfg CatalogServiceConfig) (*CatalogService, error) {
	cfg.ServiceConfig.applyDefaults()
	if cfg.Meter == nil {
		return nil, fmt.Errorf("core: CatalogServiceConfig.Meter is required")
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 500
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := &CatalogService{cfg: cfg, m: cfg.Meter}
	s.appComp = cfg.Meter.Component("app")

	s.node = storage.NewNode(storage.Config{
		Replicas:           cfg.StorageReplicas,
		BlockCacheBytes:    cfg.StorageCacheBytes,
		Meter:              cfg.Meter,
		DiskPenaltyPerByte: cfg.DiskPenaltyPerByte,
	})
	if err := catalog.Seed(s.node, catalog.SeedConfig{
		Tables:             cfg.Tables,
		Seed:               cfg.Seed,
		Normalized:         cfg.Mode == ModeObject,
		Denormalized:       cfg.Mode == ModeKV,
		StatsBytesOverride: cfg.StatsBytes,
	}); err != nil {
		return nil, err
	}
	db := storage.NewClient(rpc.NewLoopback(s.node.Server(), s.appComp, meter.NewBurner(), cfg.RPCCost))
	s.app = catalog.NewApp(db)

	objSize := func(k string, o *catalog.TableInfo) int64 { return o.MemSize() + int64(len(k)) }
	switch cfg.Arch {
	case Remote:
		s.rcServer = remotecache.NewServer(remotecache.ServerConfig{
			CapacityBytes: cfg.RemoteCacheBytes,
			Meter:         cfg.Meter,
			Name:          "remotecache",
			RPCCost:       cfg.RPCCost,
		})
		s.rc = remotecache.NewSingleClient(
			rpc.NewLoopback(s.rcServer.RPCServer(), s.appComp, meter.NewBurner(), cfg.RPCCost))
	case Linked:
		s.lc = linkedcache.New(linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
		}, objSize)
		s.m.Component("app.cache").SetMemBytes(cfg.AppCacheBytes * int64(cfg.AppReplicas))
	case LinkedVersion:
		s.vc = consistency.NewVersionedCache[*catalog.TableInfo](linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
		}, func(k string, o *catalog.TableInfo) int64 { return o.MemSize() + int64(len(k)) })
		s.m.Component("app.cache").SetMemBytes(cfg.AppCacheBytes * int64(cfg.AppReplicas))
	case LinkedOwned:
		s.sharder = cluster.NewSharder(64)
		s.oc = consistency.NewOwnedCache[*catalog.TableInfo]("app0", s.sharder, linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
		}, func(k string, o *catalog.TableInfo) int64 { return o.MemSize() + int64(len(k)) })
		s.m.Component("app.cache").SetMemBytes(cfg.AppCacheBytes * int64(cfg.AppReplicas))
	}

	s.front = rpc.NewServer(s.appComp, meter.NewBurner(), cfg.RPCCost)
	s.front.SetMeterHandlerBody(false)
	s.front.Handle("app.Read", s.handleRead)
	s.front.Handle("app.Write", s.handleWrite)
	return s, nil
}

// Arch implements Service.
func (s *CatalogService) Arch() Arch { return s.cfg.Arch }

// Node exposes the storage node.
func (s *CatalogService) Node() *storage.Node { return s.node }

// tableID parses a workload key ("key-%08d") into a table id.
func tableID(key string) (int64, error) {
	i := strings.LastIndexByte(key, '-')
	if i < 0 {
		return 0, fmt.Errorf("core: malformed catalog key %q", key)
	}
	return strconv.ParseInt(key[i+1:], 10, 64)
}

// fetch reads the rich object from storage via the mode's read path.
func (s *CatalogService) fetch(id int64) (*catalog.TableInfo, error) {
	if s.cfg.Mode == ModeObject {
		return s.app.GetTableObject(id)
	}
	return s.app.GetTableKV(id)
}

func (s *CatalogService) fetchVersioned(key string) (*catalog.TableInfo, uint64, error) {
	id, err := tableID(key)
	if err != nil {
		return nil, 0, err
	}
	info, err := s.fetch(id)
	if err != nil {
		return nil, 0, err
	}
	ver, _, err := s.version(id)
	if err != nil {
		return nil, 0, err
	}
	return info, ver, nil
}

func (s *CatalogService) version(id int64) (uint64, bool, error) {
	if s.cfg.Mode == ModeObject {
		return s.app.VersionOfObject(id)
	}
	return s.app.VersionOfKV(id)
}

// read serves one rich-object read through the architecture.
func (s *CatalogService) read(key string) (*catalog.TableInfo, error) {
	id, err := tableID(key)
	if err != nil {
		return nil, err
	}
	switch s.cfg.Arch {
	case Base:
		return s.fetch(id)
	case Remote:
		// The remote cache stores the serialized object: a hit pays RPC
		// plus deserialization.
		if buf, found, err := s.rc.Get(key); err != nil {
			return nil, err
		} else if found {
			info := &catalog.TableInfo{}
			if err := wire.Unmarshal(buf, info); err != nil {
				return nil, err
			}
			return info, nil
		}
		info, err := s.fetch(id)
		if err != nil {
			return nil, err
		}
		if err := s.rc.Set(key, wire.Marshal(info)); err != nil {
			return nil, err
		}
		return info, nil
	case Linked:
		info, _, err := s.lc.GetOrLoad(key, func() (*catalog.TableInfo, error) { return s.fetch(id) })
		return info, err
	case LinkedVersion:
		info, _, err := s.vc.Read(key,
			func(string) (uint64, bool, error) { return s.version(id) },
			s.fetchVersioned)
		return info, err
	case LinkedOwned:
		info, _, err := s.oc.Read(key, s.fetchVersioned)
		return info, err
	default:
		return nil, fmt.Errorf("core: unknown arch %v", s.cfg.Arch)
	}
}

// write refreshes a table's stats payload and maintains the caches.
func (s *CatalogService) write(key string, stats []byte) error {
	id, err := tableID(key)
	if err != nil {
		return err
	}
	storeWrite := func() error {
		if s.cfg.Mode == ModeObject {
			return s.app.UpdateTableStats(id, stats)
		}
		// Denormalized write: read-modify-write the materialized object.
		info, err := s.app.GetTableKV(id)
		if err != nil {
			return err
		}
		info.Stats = stats
		return s.app.UpdateTableKV(info)
	}
	switch s.cfg.Arch {
	case Base:
		return storeWrite()
	case Remote:
		if err := storeWrite(); err != nil {
			return err
		}
		_, err := s.rc.Delete(key)
		return err
	case Linked:
		if err := storeWrite(); err != nil {
			return err
		}
		s.lc.Delete(key)
		return nil
	case LinkedVersion:
		if err := storeWrite(); err != nil {
			return err
		}
		s.vc.Invalidate(key)
		return nil
	case LinkedOwned:
		// The owner routes the write but does not re-materialize the rich
		// object inline; invalidating forces the next read to re-compose
		// under a fresh ownership assignment, which preserves
		// linearizability (we are the only writer for owned keys).
		if !s.oc.Owns(key) {
			return consistency.ErrNotOwner
		}
		if err := storeWrite(); err != nil {
			return err
		}
		s.oc.Invalidate(key)
		return nil
	default:
		return fmt.Errorf("core: unknown arch %v", s.cfg.Arch)
	}
}

func (s *CatalogService) handleRead(req []byte) ([]byte, error) {
	var out []byte
	var err error
	meter.Attribute(s.m, s.appComp, func() {
		var r remotecache.GetRequest
		if err = wire.Unmarshal(req, &r); err != nil {
			return
		}
		var info *catalog.TableInfo
		info, err = s.read(r.Key)
		if err != nil {
			return
		}
		// Application logic over the rich object: resolve a principal's
		// effective privileges (the inheritance-aware view) and digest
		// the stats payload — then reply with the small derived result.
		// The client asked a governance question, not for the raw blob.
		privs := info.AllowedFor("principal_007")
		summary := wire.NewEncoder(64)
		summary.String(1, info.FullName)
		summary.String(2, info.Owner)
		for _, p := range privs {
			summary.String(3, p)
		}
		summary.Uint64(4, uint64(len(info.Constraints)))
		summary.Uint64(5, uint64(len(info.Lineage)))
		summary.BytesField(6, Digest(info.Stats))
		out = wire.Marshal(&remotecache.GetResponse{
			Found: true,
			Value: append([]byte(nil), summary.Bytes()...),
		})
	})
	return out, err
}

func (s *CatalogService) handleWrite(req []byte) ([]byte, error) {
	var out []byte
	var err error
	meter.Attribute(s.m, s.appComp, func() {
		var r remotecache.SetRequest
		if err = wire.Unmarshal(req, &r); err != nil {
			return
		}
		if err = s.write(r.Key, r.Value); err != nil {
			return
		}
		out = wire.Marshal(&remotecache.Ack{OK: true})
	})
	return out, err
}

// Read implements Service: returns the serialized rich object.
func (s *CatalogService) Read(key string) ([]byte, error) {
	respBody, err := s.front.Dispatch("app.Read", wire.Marshal(&remotecache.GetRequest{Key: key}))
	if err != nil {
		return nil, err
	}
	var resp remotecache.GetResponse
	if err := wire.Unmarshal(respBody, &resp); err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Write implements Service: value is the new stats payload.
func (s *CatalogService) Write(key string, value []byte) error {
	req := wire.Marshal(&remotecache.SetRequest{Key: key, Value: value})
	_, err := s.front.Dispatch("app.Write", req)
	return err
}

// CacheHitRatio reports the application-level hit ratio.
func (s *CatalogService) CacheHitRatio() float64 {
	switch s.cfg.Arch {
	case Remote:
		return s.rcServer.Stats().HitRatio()
	case Linked:
		return s.lc.Stats().HitRatio()
	case LinkedVersion:
		st := s.vc.Stats()
		if st.Reads == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Reads)
	case LinkedOwned:
		st := s.oc.Stats()
		if st.Reads == 0 {
			return 0
		}
		return float64(st.AuthorityHits) / float64(st.Reads)
	default:
		return 0
	}
}

// Close implements Service.
func (s *CatalogService) Close() error { return nil }
