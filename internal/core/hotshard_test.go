package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"cachecost/internal/fault"
	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// TestManagedTierKillOldNodeMidMigration drives the managed multi-node
// cache tier into a live migration and kills the migration's source node
// in the middle of the double-read window — the worst moment: the new
// primary is still cold and every miss on the moving shard is probing
// the corpse. The recovery contract: no client-visible errors (handoff
// reads against the dead node degrade to storage misses), the manager
// still completes the cutover on schedule, the hit-ratio dip stays
// bounded, and reads after recovery return the canonical bytes — no
// acknowledged write is lost, because storage remained the source of
// truth throughout.
func TestManagedTierKillOldNodeMidMigration(t *testing.T) {
	const (
		warmup    = 400
		ops       = 2600
		tickEvery = 100
	)
	m := meter.NewMeter()
	gen := smallGen(7)
	inj := fault.New(7, fault.Options{Meter: m})
	cfg := smallCfg(Remote, m)
	cfg.CacheNodes = 4
	cfg.RemoteCacheBytes = 1 << 20 // whole population fits: the dip we see is the fault's
	cfg.Faults = inj
	// Disable replication (no shard reaches HotFrac of a node's fair
	// share at 100) and make migration eager: the manager then answers
	// the Zipf head with a live migration — the scenario under test.
	cfg.ShardMgr = &ShardMgrConfig{HotFrac: 100, MigrateFrac: 1.05, HandoffTicks: 4}
	svc, err := BuildKVService(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	mgr := svc.ShardManager()
	smap := svc.ShardMap()
	if mgr == nil || smap == nil {
		t.Fatal("managed service built without a manager or shard map")
	}

	killed := ""
	reviveAt := -1
	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup: warmup, Ops: ops, Prices: meter.GCP,
		OnOp: func(n int) {
			if n == reviveAt {
				inj.Revive(killed)
			}
			// Manager ticks start with the metered window so the kill and
			// its degradations land where the result can see them.
			if n >= warmup && n%tickEvery == 0 {
				mgr.Tick()
			}
			if killed != "" || mgr.Stats().Migrates == 0 {
				return
			}
			// First migration is in flight: kill its source node while the
			// double-read window is open.
			for s := 0; s < smap.Shards(); s++ {
				pl := smap.Placement(s)
				if !pl.Migrating() {
					continue
				}
				idx, err := strconv.Atoi(strings.TrimPrefix(pl.Old, "c"))
				if err != nil {
					t.Errorf("unparseable old node %q", pl.Old)
					return
				}
				killed = CacheFaultNode(idx)
				inj.Kill(killed)
				reviveAt = n + 6*tickEvery
				return
			}
		},
	})
	if err != nil {
		t.Fatalf("kill during live migration surfaced a client error: %v", err)
	}
	if killed == "" {
		t.Fatal("the manager never started a migration: the scenario did not run")
	}
	if reviveAt > warmup+ops {
		t.Fatalf("revive scheduled at op %d, past the run: kill landed too late to observe recovery", reviveAt)
	}
	st := mgr.Stats()
	if st.Migrates == 0 || st.Cutovers == 0 {
		t.Fatalf("migration must complete despite the dead source: migrates=%d cutovers=%d", st.Migrates, st.Cutovers)
	}
	if res.Degraded == 0 {
		t.Fatal("killing the handoff's old node never degraded a read: the window was not exercised")
	}
	// Bounded dip: the tier holds the whole population, so only the dead
	// node's share and the migration's epoch turnover cost hits. A
	// collapsed cache would drag the whole metered window under 0.5.
	if res.HitRatio < 0.5 {
		t.Fatalf("hit-ratio dip unbounded: %.3f over the metered window", res.HitRatio)
	}
	// No lost acknowledged write: after revival every key still reads as
	// the digest of its canonical bytes (the service replies with the
	// application digest; every write in the run — and the preload —
	// stored ValueFor(key, 2048), so cache and storage must agree on it).
	for i := 0; i < 20; i++ {
		key := workload.KeyName(i)
		got, err := svc.Read(key)
		if err != nil {
			t.Fatalf("post-recovery read %q: %v", key, err)
		}
		if want := Digest(ValueFor(key, 2048)); !bytes.Equal(got, want) {
			t.Fatalf("post-recovery read %q diverged from the acknowledged write's digest", key)
		}
	}
}

// TestManagedTierReplicatesUnderSkew pins the figure's other half at
// test scale: under heavy single-key skew the manager replicates the hot
// shard across nodes and the served-op spread tightens versus a frozen
// map. (The hotshard figure measures the wall-clock consequence; this
// test pins the placement mechanics without sleeping.)
func TestManagedTierReplicatesUnderSkew(t *testing.T) {
	run := func(managed bool) (spread float64, replicates int64) {
		m := meter.NewMeter()
		gen := workload.NewSynthetic(workload.SyntheticConfig{
			Keys: 200, Alpha: 1.4, ReadRatio: 0.95, ValueSize: 512, Seed: 11,
		})
		cfg := smallCfg(Remote, m)
		cfg.CacheNodes = 4
		cfg.RemoteCacheBytes = 1 << 20
		if managed {
			cfg.ShardMgr = &ShardMgrConfig{}
		}
		svc, err := BuildKVService(cfg, gen)
		if err != nil {
			t.Fatal(err)
		}
		mgr := svc.ShardManager()
		_, err = RunExperimentCfg(svc, m, gen, RunConfig{
			Warmup: 200, Ops: 2400, Prices: meter.GCP,
			OnOp: func(n int) {
				if mgr != nil && n > 0 && n%100 == 0 {
					mgr.Tick()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if mgr != nil {
			replicates = mgr.Stats().Replicates
		}
		return nodeSpread(svc.CacheNodeOps()), replicates
	}
	staticSpread, _ := run(false)
	managedSpread, replicates := run(true)
	if replicates == 0 {
		t.Fatal("alpha=1.4 skew never triggered a replication")
	}
	if managedSpread >= staticSpread {
		t.Fatalf("managed spread %.3f did not improve on static %.3f", managedSpread, staticSpread)
	}
}
