package core

import (
	"math"
	"math/rand"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// Model is the paper's §4 theoretical cost model:
//
//	T = QPS · ( MR(s_A)·c_A + MR(s_A+s_D)·c_D ) + c_M · ( s_A·N_r + s_D )
//
// where s_A is linked-cache bytes per app server, s_D storage-cache
// bytes, MR the miss-ratio curve, c_A the CPU cost a linked-cache miss
// incurs per request (query issue, RPC, storage front-end), c_D the
// additional CPU cost when the storage cache also misses (the disk
// path), N_r the number of cache replicas and c_M the memory price.
type Model struct {
	// QPS is the offered load.
	QPS float64
	// CASeconds is c_A in CPU-seconds per linked-cache miss.
	CASeconds float64
	// CDSeconds is c_D in CPU-seconds per storage-cache miss.
	CDSeconds float64
	// Replicas is N_r, the replication of the linked cache.
	Replicas float64
	// Prices converts cores and bytes to dollars.
	Prices meter.PriceBook
	// MR maps cache bytes to miss ratio. Must be non-increasing.
	MR func(bytes float64) float64
}

// DefaultModel returns the calibration used by the Figure 2 reproduction:
// 1M keys of 10 KiB (a 10 GiB working set), Zipf α, 40K QPS (the Unity
// Catalog load §5.2), c_A = 250µs per linked-cache miss (SQL front-end,
// RPC, query execution) and c_D = 1ms per storage-cache miss (the disk
// path) — magnitudes consistent with the measured per-request CPU of the
// simulated testbed and with SQL stores spending most cycles on query
// processing (§5.3).
func DefaultModel(alpha float64) Model {
	return Model{
		QPS:       40_000,
		CASeconds: 250e-6,
		CDSeconds: 1000e-6,
		Replicas:  1,
		Prices:    meter.GCP,
		MR:        ZipfMR(1_000_000, alpha, 10<<10),
	}
}

// ZipfMR returns the analytic LRU miss-ratio curve for a Zipfian
// workload of n keys with fixed value size: a cache of s bytes holds the
// top s/valueSize keys, so MR(s) = 1 - mass(top-k). For Zipfian
// popularity LRU closely tracks this perfect-frequency curve.
func ZipfMR(n int, alpha float64, valueSize int) func(bytes float64) float64 {
	z := workload.NewZipfSampler(n, alpha, rand.New(rand.NewSource(1)))
	return func(bytes float64) float64 {
		k := int(bytes / float64(valueSize))
		return 1 - z.TopMass(k)
	}
}

// TotalCost evaluates T at (s_A, s_D), in dollars per month.
func (m Model) TotalCost(sA, sD float64) float64 {
	cores := m.QPS * (m.MR(sA)*m.CASeconds + m.MR(sA+sD)*m.CDSeconds)
	memBytes := sA*m.Replicas + sD
	return m.Prices.CPUCost(cores) + m.Prices.MemCost(int64(memBytes))
}

// CostSaving returns T_base / T_linked: the factor by which a Linked
// deployment (sA bytes of app cache on top of sD of storage cache) is
// cheaper than a Base deployment (no app cache, sDBase of storage cache).
func (m Model) CostSaving(sA, sD, sDBase float64) float64 {
	base := m.TotalCost(0, sDBase)
	linked := m.TotalCost(sA, sD)
	if linked == 0 {
		return math.Inf(1)
	}
	return base / linked
}

// derivStep is the step used for numerical marginals: 64 MiB, small
// against the GB-scale caches the model sweeps.
const derivStep = 64 << 20

// MarginalA returns ∂T/∂s_A at (s_A, s_D) in dollars per byte.
func (m Model) MarginalA(sA, sD float64) float64 {
	return (m.TotalCost(sA+derivStep, sD) - m.TotalCost(sA, sD)) / derivStep
}

// MarginalD returns ∂T/∂s_D at (s_A, s_D) in dollars per byte.
func (m Model) MarginalD(sA, sD float64) float64 {
	return (m.TotalCost(sA, sD+derivStep) - m.TotalCost(sA, sD)) / derivStep
}

// OptimalSA returns the s_A in [0, maxSA] minimizing T with s_D fixed —
// the paper's takeaway that the best allocation uses as much linked
// cache as possible, up to where the marginal benefit of cache equals
// the marginal cost of memory (|∂T/∂s_A| = 0).
func (m Model) OptimalSA(sD, maxSA float64) float64 {
	const steps = 512
	best, bestCost := 0.0, math.Inf(1)
	for i := 0; i <= steps; i++ {
		sA := maxSA * float64(i) / steps
		if c := m.TotalCost(sA, sD); c < bestCost {
			best, bestCost = sA, c
		}
	}
	return best
}

// CalibrateFromRun derives c_A and c_D from two measured runs of the
// experiment harness: a Linked run (app cache ≈ working set, so storage
// traffic ≈ misses only) and a Base run with no caches. It returns a
// model whose per-miss CPU matches the simulator's measured costs.
func CalibrateFromRun(baseCores, qps float64, mr func(float64) float64) Model {
	m := DefaultModel(1.2)
	m.MR = mr
	m.QPS = qps
	if qps > 0 {
		// In Base every request pays c_A and MR(sD≈0)≈1 pays c_D; split
		// the measured total using the default c_D/c_A ratio.
		perReq := baseCores / qps
		ratio := m.CDSeconds / m.CASeconds
		m.CASeconds = perReq / (1 + ratio)
		m.CDSeconds = m.CASeconds * ratio
	}
	return m
}
