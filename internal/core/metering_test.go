package core

import (
	"testing"
	"time"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// TestMeteringConservation checks the central invariant of the costing
// methodology: with a single-threaded driver, the busy time attributed
// across ALL components never exceeds the wall time of the metered
// window (no double counting), and covers most of it (no large blind
// spots) — otherwise the dollar figures would be fabricated.
func TestMeteringConservation(t *testing.T) {
	if raceEnabled {
		t.Skip("measured cost ratios are distorted by race-detector instrumentation")
	}
	for _, arch := range []Arch{Base, Remote, Linked, LinkedVersion} {
		t.Run(arch.String(), func(t *testing.T) {
			m := meter.NewMeter()
			gen := smallGen(13)
			svc, err := BuildKVService(smallCfg(arch, m), gen)
			if err != nil {
				t.Fatal(err)
			}
			// Warmup, then a timed window.
			for i := 0; i < 300; i++ {
				op := gen.Next()
				if op.Kind == workload.Read {
					svc.Read(op.Key)
				} else {
					svc.Write(op.Key, ValueFor(op.Key, op.ValueSize))
				}
			}
			m.Reset()
			t0 := time.Now()
			for i := 0; i < 800; i++ {
				op := gen.Next()
				if op.Kind == workload.Read {
					if _, err := svc.Read(op.Key); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := svc.Write(op.Key, ValueFor(op.Key, op.ValueSize)); err != nil {
						t.Fatal(err)
					}
				}
			}
			elapsed := time.Since(t0)
			busy := m.TotalBusy()
			if busy > elapsed*105/100 {
				t.Fatalf("attributed busy %v exceeds wall %v: double counting", busy, elapsed)
			}
			if busy < elapsed*40/100 {
				t.Fatalf("attributed busy %v is under 40%% of wall %v: blind spots", busy, elapsed)
			}
		})
	}
}
