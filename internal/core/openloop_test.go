package core

import (
	"sync/atomic"
	"testing"
	"time"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// stallService is a Service whose ops are instant except for one
// injected stall: the op at index stallAt (counting metered ops across
// all lanes) blocks for stallFor. It is the minimal server with the
// closed-loop blind spot — every op is fast except one, but under open
// loop all the ops scheduled behind the stall still pay for it.
type stallService struct {
	stallAt  int64
	stallFor time.Duration
	n        atomic.Int64
}

func (s *stallService) do() {
	if s.n.Add(1)-1 == s.stallAt {
		time.Sleep(s.stallFor)
	}
}

func (s *stallService) Read(key string) ([]byte, error)      { s.do(); return nil, nil }
func (s *stallService) Write(key string, value []byte) error { s.do(); return nil }
func (s *stallService) Arch() Arch                           { return Base }
func (s *stallService) Close() error                         { return nil }
func (s *stallService) Worker(i int) (ServiceWorker, error)  { return s, nil }

var _ ParallelService = (*stallService)(nil)

func openLoopCfg(ops int, rate float64, par int) RunConfig {
	return RunConfig{
		Warmup:      10,
		Ops:         ops,
		Parallelism: par,
		Prices:      meter.GCP,
		Arrival:     &workload.ArrivalConfig{Process: workload.ArrivalPoisson, Rate: rate, Seed: 1},
	}
}

func synthGen(t *testing.T, ops int) workload.Generator {
	t.Helper()
	return workload.NewSynthetic(workload.SyntheticConfig{Keys: 64, ReadRatio: 0.9, ValueSize: 64, Seed: 1})
}

// runStallCell drives a stallService open-loop at P1 (one lane, so every
// op scheduled after the stall queues behind it) and returns the result.
func runStallCell(t *testing.T) *RunResult {
	t.Helper()
	const ops = 300
	svc := &stallService{stallAt: 10 + 50, stallFor: 50 * time.Millisecond} // op 50 of the metered window
	m := meter.NewMeter()
	gen := synthGen(t, ops)
	res, err := RunExperimentCfg(svc, m, gen, openLoopCfg(ops, 1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoordinatedOmissionRegression is the harness this PR exists to
// pin: a 50ms stall in an otherwise-instant server must show up in the
// intended-arrival percentiles and must NOT show up in the send-time
// percentiles. A closed-loop (or send-clock) recording sees one slow op
// and ~299 fast ones — p99 healthy; the honest clock sees the stall
// charged to every op that was scheduled behind it.
func TestCoordinatedOmissionRegression(t *testing.T) {
	res := runStallCell(t)
	if res.Executed != res.Offered || res.ClientShed != 0 {
		t.Fatalf("lossy run (offered %d, executed %d, shed %d) — lane depth too small for the stall",
			res.Offered, res.Executed, res.ClientShed)
	}
	// stallInP99 is the clock-flippable assertion: does the given p99
	// carry the injected 50ms stall? At 1000 qps, ~50 ops arrive during
	// the stall — well over 1% of 300 — so the honest clock must trip
	// it; the send-time clock sees at most the one stalled op at rank
	// ~299.7, excluded from the nearest-rank p99.
	stallInP99 := func(p99 time.Duration) bool { return p99 >= 10*time.Millisecond }
	if !stallInP99(res.LatencyP99) {
		t.Fatalf("intended-arrival p99 = %v does not carry the 50ms stall", res.LatencyP99)
	}
	// The flip: record latency at send time instead of intended arrival
	// and the same assertion on the same run must fail — this is exactly
	// the regression (the blind spot) that the honest clock removes.
	if stallInP99(res.SendLatencyP99) {
		t.Fatalf("send-time p99 = %v also carries the stall; flipping the clock should hide it", res.SendLatencyP99)
	}
	// The acceptance criterion, stated directly: the intended-arrival
	// p99 is strictly worse than the send-time p99.
	if res.LatencyP99 <= res.SendLatencyP99 {
		t.Fatalf("intended-arrival p99 (%v) not strictly worse than send-time p99 (%v)",
			res.LatencyP99, res.SendLatencyP99)
	}
}

// TestOpenLoopDeterminism pins the replay contract end to end at P1 and
// P4: two runs from the same seed see the identical arrival timeline
// and produce identical op counts.
func TestOpenLoopDeterminism(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, proc := range []workload.ArrivalProcess{workload.ArrivalPoisson, workload.ArrivalBursty, workload.ArrivalDiurnal} {
			t.Run(proc.String(), func(t *testing.T) {
				const ops = 500
				run := func() *RunResult {
					svc := &stallService{stallAt: -1}
					m := meter.NewMeter()
					cfg := openLoopCfg(ops, 20000, par)
					cfg.Arrival.Process = proc
					res, err := RunExperimentCfg(svc, m, synthGen(t, ops), cfg)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				a, b := run(), run()
				if a.Arrival != b.Arrival {
					t.Fatalf("schedule names differ: %q vs %q", a.Arrival, b.Arrival)
				}
				if a.ScheduleSpan != b.ScheduleSpan {
					t.Fatalf("schedule spans differ: %v vs %v — timeline not deterministic", a.ScheduleSpan, b.ScheduleSpan)
				}
				if a.Offered != b.Offered || a.Executed != b.Executed || a.Ops != b.Ops {
					t.Fatalf("op counts differ: %d/%d/%d vs %d/%d/%d",
						a.Offered, a.Executed, a.Ops, b.Offered, b.Executed, b.Ops)
				}
				if a.Offered != ops {
					t.Fatalf("offered %d, want %d", a.Offered, ops)
				}
				// An instant server keeps up: nothing sheds, so executed
				// must equal offered on both runs.
				if a.Executed != ops || a.ClientShed != 0 {
					t.Fatalf("instant server shed work: executed %d, client shed %d", a.Executed, a.ClientShed)
				}
			})
		}
	}
}

// TestOpenLoopTimelineMatchesSchedule pins that the driver replays the
// schedule it was given: the byte-encoded timeline of two BuildSchedule
// calls with the run's config is identical, and the run's reported
// offered rate is the schedule's, not a wall-clock measurement.
func TestOpenLoopTimelineMatchesSchedule(t *testing.T) {
	const ops = 400
	cfg := openLoopCfg(ops, 5000, 1)
	sched, err := workload.BuildSchedule(*cfg.Arrival, ops)
	if err != nil {
		t.Fatal(err)
	}
	svc := &stallService{stallAt: -1}
	res, err := RunExperimentCfg(svc, meter.NewMeter(), synthGen(t, ops), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScheduleSpan != sched.Span() {
		t.Fatalf("run span %v != schedule span %v", res.ScheduleSpan, sched.Span())
	}
	if got, want := res.OfferedQPS, sched.OfferedQPS(); got != want {
		t.Fatalf("offered qps %.2f != schedule's %.2f", got, want)
	}
	if res.Arrival != sched.Name() {
		t.Fatalf("arrival name %q != schedule's %q", res.Arrival, sched.Name())
	}
}

// TestOpenLoopThroughputUsesScheduleSpan pins the satellite fix: under
// open loop, throughput must be computed from the schedule span, not the
// slowest lane's wall clock. With a big terminal stall the wall clock is
// much longer than the span; the old wall-clock formula would understate
// throughput (and overstate nothing at all about offered load).
func TestOpenLoopThroughputUsesScheduleSpan(t *testing.T) {
	const ops = 200
	// Stall on the last op: the wall stretches ~50ms past a ~20ms span.
	svc := &stallService{stallAt: 10 + ops - 1, stallFor: 50 * time.Millisecond}
	cfg := openLoopCfg(ops, 10000, 1)
	res, err := RunExperimentCfg(svc, meter.NewMeter(), synthGen(t, ops), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTput := float64(res.Executed) / res.ScheduleSpan.Seconds()
	if res.Throughput != wantTput {
		t.Fatalf("throughput %.2f, want executed/span = %.2f", res.Throughput, wantTput)
	}
	wallTput := float64(res.Executed) / res.Wall.Seconds()
	if res.Throughput <= wallTput {
		t.Fatalf("throughput %.2f not above wall-clock rate %.2f — stall did not stretch the wall? (span %v, wall %v)",
			res.Throughput, wallTput, res.ScheduleSpan, res.Wall)
	}
}

// TestOpenLoopClientShed pins the bounded-lane contract: with a tiny
// lane and a server stalled for most of the run, excess arrivals are
// dropped at their intended instant and conserved in ClientShed.
func TestOpenLoopClientShed(t *testing.T) {
	const ops = 300
	svc := &stallService{stallAt: 10, stallFor: 200 * time.Millisecond} // first metered op stalls
	cfg := openLoopCfg(ops, 5000, 1)
	cfg.LaneDepth = 4
	res, err := RunExperimentCfg(svc, meter.NewMeter(), synthGen(t, ops), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientShed == 0 {
		t.Fatal("depth-4 lane with a 200ms stall at 5000 qps shed nothing")
	}
	if got := int64(res.Executed) + res.ClientShed; got != int64(res.Offered) {
		t.Fatalf("conservation violated: executed %d + shed %d != offered %d",
			res.Executed, res.ClientShed, res.Offered)
	}
}

// TestOpenLoopRejectsBatching pins the config validation.
func TestOpenLoopRejectsBatching(t *testing.T) {
	cfg := openLoopCfg(10, 1000, 1)
	cfg.BatchSize = 4
	if _, err := RunExperimentCfg(&stallService{stallAt: -1}, meter.NewMeter(), synthGen(t, 10), cfg); err == nil {
		t.Fatal("open loop with BatchSize > 1 did not error")
	}
}
