package core

import (
	"fmt"
	"time"

	"cachecost/internal/elastic"
	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// Elastic-figure calibration.
const (
	// elasticMemMultiplier prices DRAM at the paper's §4 elevated
	// scenario: elasticity is exactly the response the paper prescribes
	// when memory is the expensive resource — shrink the cache the hours
	// it isn't earning its rent.
	elasticMemMultiplier = 40
	// elasticValueSize keeps the working set small enough for fast cells
	// while leaving the cache tiers real bytes to resize.
	elasticValueSize = 4096
	// elasticLoad drives every cell at this fraction of its
	// architecture's closed-loop capacity so the diurnal peak stays
	// feasible and cost is compared at equal, met SLO.
	elasticLoad = 0.4
	// elasticStaticShare is the fixed cache provision (fraction of the
	// working set, percent) the static cells and the controller's
	// starting point both use — the repository's standard 60%.
	elasticStaticShare = 60
)

// FigElastic prices elastic cache provisioning against the static
// provisioning every other figure uses. Each architecture runs the same
// open-loop schedule twice — a diurnal arrival with a popularity flip
// (flash crowd) halfway through the metered window — once with the
// standard fixed 60%-of-working-set cache, once with the elastic
// controller retuning the cache's byte budget live against the
// memory-rent vs miss-cost trade-off. The meter's time-averaged memory
// pricing bills exactly the bytes held while they were held, so a
// controller that shrinks the cache off-peak shows up as rent saved.
// Base has no cache tier to tune; its row is the control pair.
func FigElastic(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:    "elastic",
		Title: "Elastic vs static cache provisioning (diurnal + flash crowd, 40x memory price)",
		Header: []string{"arch", "mode", "$/Mreq", "p99_intended_ms", "hit", "mem_$/mo",
			"end_bytes", "resizes", "server_shed", "deadline_exp"},
	}
	prices := o.Prices.WithMemoryMultiplier(elasticMemMultiplier)
	cfg := workload.SyntheticConfig{
		Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: elasticValueSize, Seed: o.Seed,
	}
	ws := int64(cfg.Keys) * int64(cfg.ValueSize)

	verdict := map[Arch]map[string]float64{}
	for _, arch := range []Arch{Base, Remote, Linked} {
		// Closed-loop capacity probe; it also calibrates the marginal
		// cost of a miss from this architecture's own measured storage
		// bill.
		probe, _, err := o.elasticCell(arch, cfg, ws, prices, nil, 0, false, 0)
		if err != nil {
			return nil, err
		}
		if probe.Throughput <= 0 {
			return nil, fmt.Errorf("core: elastic capacity probe for %s measured no throughput", arch)
		}
		missUSD := missCostUSD(probe, cfg.ReadRatio)
		slo := o.SLO
		if slo <= 0 {
			slo = 10 * probe.LatencyP99
			if slo < 250*time.Millisecond {
				slo = 250 * time.Millisecond
			}
		}
		arrival := workload.ArrivalConfig{
			Process: workload.ArrivalDiurnal,
			Rate:    elasticLoad * probe.Throughput,
			Seed:    o.Seed,
		}
		// The popularity flip lands halfway through the metered window:
		// the flash crowd the controller has to chase. Both cells see it.
		runCfg := cfg
		runCfg.FlipAt = o.Warmup + o.Ops/2

		verdict[arch] = map[string]float64{}
		for _, mode := range []string{"static", "elastic"} {
			el := mode == "elastic" && arch != Base
			res, info, err := o.elasticCell(arch, runCfg, ws, prices, &arrival, slo, el, missUSD)
			if err != nil {
				return nil, err
			}
			t.AddRow(arch.String(), mode, res.CostPerMReq, float64(res.LatencyP99)/1e6,
				res.HitRatio, res.Report.MemCost, info.endBytes, info.resizes,
				res.ServerShed, res.DeadlineExceeded)
			o.emit(fmt.Sprintf("elastic/%s/%s", arch, mode), res)
			verdict[arch][mode] = res.CostPerMReq
		}
		if s, e := verdict[arch]["static"], verdict[arch]["elastic"]; arch != Base && e > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: elastic is %.3gx the static cost at the same met SLO", arch, e/s))
		}
	}
	t.Notes = append(t.Notes,
		"Base has no cache tier: its elastic cell runs identically to static (control pair)",
		fmt.Sprintf("static cells fix the cache at %d%% of the working set; elastic cells start there and let the controller move it", elasticStaticShare),
		"memory is billed time-averaged, so off-peak shrinking is rent actually saved, not cosmetics")
	if rs, re := verdict[Remote]["elastic"], verdict[Linked]["elastic"]; rs > 0 && re > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"verdict check: Linked/Remote cost ratio is %.3g static vs %.3g elastic — elasticity narrows the bill but does not flip the paper's ordering",
			verdict[Linked]["static"]/verdict[Remote]["static"], re/rs))
	}
	return t, nil
}

// elasticInfo is the controller-side readout of one cell.
type elasticInfo struct {
	endBytes int64
	resizes  int64
}

// elasticCell runs one (arch, mode) cell on a fresh deployment. A nil
// arrival runs the closed-loop capacity probe. With el set, an elastic
// controller observes every read and retunes the architecture's cache
// tier on the driver's op clock.
func (o FigOptions) elasticCell(arch Arch, cfg workload.SyntheticConfig, ws int64,
	prices meter.PriceBook, arrival *workload.ArrivalConfig, slo time.Duration,
	el bool, missUSD float64) (*RunResult, elasticInfo, error) {

	m := meter.NewMeter()
	o.cellMeter(m)
	gen := workload.NewSynthetic(cfg)
	staticBytes := ws * elasticStaticShare / 100
	svcCfg := ServiceConfig{
		Arch:              arch,
		Meter:             m,
		StorageCacheBytes: ws * 15 / 100,
		AppCacheBytes:     staticBytes,
		RemoteCacheBytes:  staticBytes,
		AppReplicas:       o.AppReplicas,
		Tracer:            o.Tracer,
		Telemetry:         o.Telemetry,
	}
	if arrival != nil {
		svcCfg.Admission = &AdmissionConfig{MaxInflight: 1, QueueDepth: 4}
	}
	svc, err := BuildKVService(svcCfg, gen)
	if err != nil {
		return nil, elasticInfo{}, err
	}
	rc := RunConfig{
		Warmup: o.Warmup, Ops: o.Ops, Prices: prices, Tracer: o.Tracer, Telemetry: o.Telemetry,
	}
	if arrival != nil {
		rc.Arrival = arrival
		rc.SLO = slo
	}

	var ctrl *elastic.Controller
	if el {
		ecfg := elastic.Config{
			Name:        arch.String(),
			Prices:      prices,
			MissCostUSD: missUSD,
			MinBytes:    ws / 64,
			MaxBytes:    2 * ws,
			Window:      4096,
			MinSamples:  512,
			Registry:    o.Telemetry,
		}
		switch {
		case svc.LinkedCache() != nil:
			ecfg.Target = svc.LinkedCache()
			ecfg.Replicas = o.AppReplicas
		case svc.RemoteCacheServer() != nil:
			ecfg.Target = svc.RemoteCacheServer()
		default:
			return nil, elasticInfo{}, fmt.Errorf("core: %s has no resizable cache tier", arch)
		}
		ctrl = elastic.New(ecfg)
		svc.SetAccessObserver(ctrl.Observe)
		// Tick on the driver's op clock — deterministic across runs,
		// warmup included, so the controller is already tracking when
		// the metered window opens.
		every := (o.Warmup + o.Ops) / 60
		if every < 500 {
			every = 500
		}
		rc.OnOp = func(n int) {
			if n > 0 && n%every == 0 {
				ctrl.Tick()
			}
		}
	}

	res, err := RunExperimentCfg(svc, m, gen, rc)
	if err != nil {
		return nil, elasticInfo{}, err
	}
	info := elasticInfo{}
	if el {
		info.endBytes = ctrl.TargetBytes()
		info.resizes = ctrl.Resizes()
	} else {
		switch {
		case svc.LinkedCache() != nil:
			info.endBytes = svc.LinkedCache().Capacity()
		case svc.RemoteCacheServer() != nil:
			info.endBytes = svc.RemoteCacheServer().Capacity()
		}
	}
	return res, info, nil
}

// missCostUSD calibrates the marginal dollar cost of one cache miss
// from a measured closed-loop run: the storage tier's monthly bill
// divided by the monthly operations that reached it (read misses plus
// writes).
func missCostUSD(probe *RunResult, readRatio float64) float64 {
	const secondsPerMonth = 30 * 24 * 3600
	storageOpsPerSec := probe.Throughput * (readRatio*(1-probe.HitRatio) + (1 - readRatio))
	if storageOpsPerSec <= 0 || probe.StorageCost <= 0 {
		return 1e-7
	}
	return probe.StorageCost / (storageOpsPerSec * secondsPerMonth)
}
