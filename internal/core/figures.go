package core

import (
	"fmt"
	"sort"
	"time"

	"cachecost/internal/consistency"
	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/workload"
)

// FigOptions scales the figure reproductions. The defaults run every
// figure in seconds on a laptop; raise Ops/Keys/Tables (cmd/costbench
// flags) for tighter estimates at the paper's population sizes.
type FigOptions struct {
	// Ops and Warmup are the metered and unmetered operation counts per
	// experiment cell. Defaults 3000 / 1000.
	Ops, Warmup int
	// Keys is the synthetic key population (paper: 100K). Default 2000.
	Keys int
	// Tables is the catalog population (paper trace: tens of thousands).
	// Default 300.
	Tables int
	// Seed drives workload determinism. Default 1.
	Seed int64
	// Prices is the cost book. Default GCP.
	Prices meter.PriceBook
	// AppReplicas is the number of application servers carrying the
	// linked cache (memory billed per server). Default 3.
	AppReplicas int
	// FaultRates overrides the chaos figure's fault-rate sweep
	// (cmd/costbench -faultrate). Empty means the default sweep.
	FaultRates []float64
	// Parallelism drives experiment cells with that many concurrent
	// workers (cmd/costbench -parallelism). Applies to the architectures
	// whose services support worker lanes (Base, Remote, Linked); other
	// cells run single-threaded. Default 1.
	Parallelism int
	// Tracer, when non-nil, assembles every experiment cell's service
	// with request tracing (cmd/costbench -trace): each cell's RunResult
	// carries exact path counters and the tracer's ring holds the last
	// sampled traces for export. Nil (the default) disables tracing.
	Tracer *trace.Tracer
	// Telemetry, when non-nil, threads the live metrics registry through
	// every experiment cell (cmd/costbench -metrics): the cell's service
	// stack records RPC/cache/storage telemetry into it, the cell's fresh
	// meter is bridged through a named collector (replaced per cell so
	// scrapes always see the live cell), and each RunResult carries the
	// cell's histogram summaries.
	Telemetry *telemetry.Registry
	// BatchSizes overrides the batch figure's batch-size sweep
	// (cmd/costbench -batchsizes). Empty means the default sweep
	// B ∈ {1, 2, 4, 8, 16, 32}.
	BatchSizes []int
	// OfferedLoads overrides the overload figure's offered-load sweep,
	// as multiples of each architecture's probed closed-loop capacity
	// (cmd/costbench -offered). Empty means 0.3, 0.6, 1.5, 3.0.
	OfferedLoads []float64
	// SLO overrides the overload figure's per-request latency budget
	// (cmd/costbench -slo). Zero derives it from the capacity probe:
	// max(10x closed-loop p99, 2ms).
	SLO time.Duration
	// Arrival names the overload figure's arrival process
	// (cmd/costbench -arrival): poisson, bursty or diurnal. Empty means
	// poisson.
	Arrival string
	// Flight, when non-nil, is the tail-latency flight recorder the
	// tailwhy figure arms on every cell's front door (cmd/costbench
	// creates one when -metrics serves /debug/requests, or per run of
	// -figure tailwhy). Nil lets the figure build a private one.
	Flight *flight.Recorder
	// StorageStall, when > 0, injects a wall-clock stall of this length
	// on the app→storage connection (StorageFaultNode) in the tailwhy
	// figure's cells (cmd/costbench -storagestall).
	StorageStall time.Duration
	// StorageStallRate is the probability a storage call pays
	// StorageStall. Zero means every call (cmd/costbench -stallrate).
	StorageStallRate float64
	// OnResult, when non-nil, receives every completed experiment cell's
	// result as figures produce them, keyed by a cell label
	// ("fig5b/Remote", "chaos/Linked/rate=0.1", ...). cmd/costbench uses
	// it to stream per-cell measured latency into -json output.
	OnResult func(cell string, res *RunResult)
}

// cellMeter bridges a freshly built cell meter into the telemetry
// registry (under the fixed collector name "meter", replacing the
// previous cell's bridge) so scrapes during a figure run always read the
// live cell's attribution.
func (o FigOptions) cellMeter(m *meter.Meter) {
	telemetry.RegisterMeter(o.Telemetry, "meter", m)
}

// emit hands a completed cell's result to the OnResult hook.
func (o FigOptions) emit(cell string, res *RunResult) {
	if o.OnResult != nil {
		o.OnResult(cell, res)
	}
}

// parFor returns the parallelism to use for one cell of arch: the
// configured fan-out where worker lanes exist, 1 elsewhere.
func (o FigOptions) parFor(arch Arch) int {
	if o.Parallelism > 1 {
		switch arch {
		case Base, Remote, Linked:
			return o.Parallelism
		}
	}
	return 1
}

func (o *FigOptions) applyDefaults() {
	if o.Ops <= 0 {
		o.Ops = 3000
	}
	if o.Warmup <= 0 {
		o.Warmup = 1000
	}
	if o.Keys <= 0 {
		o.Keys = 2000
	}
	if o.Tables <= 0 {
		o.Tables = 300
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Prices == (meter.PriceBook{}) {
		o.Prices = meter.GCP
	}
	if o.AppReplicas <= 0 {
		o.AppReplicas = 3
	}
}

// kvCell runs one (arch, workload) cell on a fresh deployment. Caches are
// sized to 60% of the working set: with experiment-scale key populations
// (hundreds to thousands of keys) this reproduces the cache hit ratios
// (~0.9) that the paper's configuration — GBs of cache over 100K Zipfian
// keys — reaches, because Zipfian mass concentrates more as the
// population grows.
func (o FigOptions) kvCell(arch Arch, cfg workload.SyntheticConfig) (*RunResult, error) {
	m := meter.NewMeter()
	o.cellMeter(m)
	gen := workload.NewSynthetic(cfg)
	ws := int64(cfg.Keys) * int64(cfg.ValueSize)
	par := o.parFor(arch)
	svcCfg := ServiceConfig{
		Arch:              arch,
		Meter:             m,
		StorageCacheBytes: ws * 15 / 100,
		AppCacheBytes:     ws * 60 / 100,
		RemoteCacheBytes:  ws * 60 / 100,
		AppReplicas:       o.AppReplicas,
		Parallelism:       par,
		Tracer:            o.Tracer,
		Telemetry:         o.Telemetry,
	}
	svc, err := BuildKVService(svcCfg, gen)
	if err != nil {
		return nil, err
	}
	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup: o.Warmup, Ops: o.Ops, Parallelism: par, Prices: o.Prices, Tracer: o.Tracer,
		Telemetry: o.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	o.emit(fmt.Sprintf("kv/%s/r=%.2f/v=%s", arch, cfg.ReadRatio, sizeLabel(cfg.ValueSize)), res)
	return res, nil
}

// Fig2a reproduces Figure 2a: the analytic model's cost saving of Linked
// (s_A = 8 GB, s_D = 1 GB) over Base (1 GB in-storage cache) as the
// Zipfian skew α varies.
func Fig2a(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig2a",
		Title:  "Model: cost saving vs Zipfian alpha (Linked 8GB+1GB vs Base 1GB)",
		Header: []string{"alpha", "saving_Nr1", "saving_Nr3", "MR(sA)", "T_base_$", "T_linked_$"},
	}
	const sA, sD = 8 << 30, 1 << 30
	for _, alpha := range []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4} {
		m := DefaultModel(alpha)
		s1 := m.CostSaving(sA, sD, sD)
		m3 := m
		m3.Replicas = 3
		s3 := m3.CostSaving(sA, sD, sD)
		t.AddRow(alpha, s1, s3, m.MR(sA), m.TotalCost(0, sD), m.TotalCost(sA, sD))
	}
	t.Notes = append(t.Notes, "adding linked cache saves cost at every skew; replication (N_r) taxes but does not erase the saving")
	return t, nil
}

// Fig2b reproduces Figure 2b: saving as the replica count N_r grows,
// at list memory price and at 40x memory price (with the allocation
// re-optimized, per the §4 takeaway).
func Fig2b(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig2b",
		Title:  "Model: cost saving vs replicas N_r (alpha=1.2)",
		Header: []string{"N_r", "saving_8GB", "saving_40x_optimal_sA", "optimal_sA_GB_40x"},
	}
	const sD = 1 << 30
	for nr := 1; nr <= 10; nr++ {
		m := DefaultModel(1.2)
		m.Replicas = float64(nr)
		s := m.CostSaving(8<<30, sD, sD)

		mx := DefaultModel(1.2)
		mx.Replicas = float64(nr)
		mx.Prices = o.Prices.WithMemoryMultiplier(40)
		opt := mx.OptimalSA(sD, 16<<30)
		sx := mx.CostSaving(opt, sD, sD)
		t.AddRow(nr, s, sx, opt/(1<<30))
	}
	t.Notes = append(t.Notes, "even at 40x memory prices the optimally sized linked cache still saves cost")
	return t, nil
}

// Fig3 reproduces Figure 3: the Unity-Catalog trace distributions —
// value sizes (3a) and access frequencies (3b).
func Fig3(o FigOptions) (*Table, error) {
	o.applyDefaults()
	gen := workload.NewUnity(workload.UnityConfig{Tables: o.Tables * 10, Seed: o.Seed})
	n := o.Ops * 10
	st := workload.Analyze(gen, n)

	t := &Table{
		ID:     "fig3",
		Title:  "Unity Catalog trace distributions",
		Header: []string{"metric", "value"},
	}
	t.AddRow("operations", st.Ops)
	t.AddRow("read ratio", st.ReadRatio())
	t.AddRow("unique keys", st.UniqueKeys)
	t.AddRow("value size p50 (KB)", float64(st.SizeP50)/1024)
	t.AddRow("value size p90 (KB)", float64(st.SizeP90)/1024)
	t.AddRow("value size p99 (KB)", float64(st.SizeP99)/1024)
	t.AddRow("value size max (KB)", float64(st.SizeMax)/1024)
	for _, k := range []int{1, 10, 100, 1000} {
		t.AddRow(fmt.Sprintf("access share of top %d keys", k), st.TopKShare(k))
	}
	t.Notes = append(t.Notes, "paper reports ~23KB median with large tail values and strong access skew (~93% reads)")
	return t, nil
}

// Fig4a reproduces Figure 4a: total cost per million requests across
// architectures as the read ratio varies (1 KB values).
func Fig4a(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig4a",
		Title:  "Total cost vs read ratio (synthetic, 1KB values)",
		Header: []string{"read_ratio", "Base_$/Mreq", "Remote_$/Mreq", "Linked_$/Mreq", "saving_Linked"},
	}
	for _, r := range []float64{0.50, 0.70, 0.90, 0.95, 0.99} {
		cfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: r, ValueSize: 1 << 10, Seed: o.Seed}
		var cost [3]float64
		for i, arch := range Archs {
			res, err := o.kvCell(arch, cfg)
			if err != nil {
				return nil, err
			}
			cost[i] = res.CostPerMReq
		}
		t.AddRow(r, cost[0], cost[1], cost[2], cost[0]/cost[2])
	}
	t.Notes = append(t.Notes, "caches save more as the workload gets more read-heavy")
	return t, nil
}

// fig4bKeysFor bounds the preloaded population so the biggest value sizes
// stay in memory at experiment scale, while keeping enough keys for a
// meaningful hit-ratio curve.
func fig4bKeysFor(valueSize, baseKeys int) int {
	const budget = 96 << 20 // bytes of preloaded values per deployment
	k := budget / valueSize
	if k > baseKeys {
		k = baseKeys
	}
	if k < 48 {
		k = 48
	}
	return k
}

// Fig4b reproduces Figure 4b: total cost across architectures as the
// value size grows from 1KB to 1MB (r = 90%). The paper reports Linked
// saving 3.9x at 1KB rising to 7.3x at 1MB.
func Fig4b(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig4b",
		Title:  "Total cost vs value size (synthetic, r=90%)",
		Header: []string{"value_size", "keys", "Base_$/Mreq", "Remote_$/Mreq", "Linked_$/Mreq", "saving_Linked"},
	}
	for _, vs := range []int{1 << 10, 10 << 10, 100 << 10, 1 << 20} {
		keys := fig4bKeysFor(vs, o.Keys)
		cfg := workload.SyntheticConfig{Keys: keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: vs, Seed: o.Seed}
		ops := o.Ops
		if vs >= 100<<10 {
			ops = o.Ops / 5 // large-value cells move far more bytes per op
		}
		oo := o
		oo.Ops = ops
		oo.Warmup = ops / 3
		var cost [3]float64
		for i, arch := range Archs {
			res, err := oo.kvCell(arch, cfg)
			if err != nil {
				return nil, err
			}
			cost[i] = res.CostPerMReq
		}
		t.AddRow(sizeLabel(vs), keys, cost[0], cost[1], cost[2], cost[0]/cost[2])
	}
	t.Notes = append(t.Notes, "larger values mean more (de)serialization and disk bytes, widening Linked's advantage")
	return t, nil
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Fig5a reproduces Figure 5a: cost across architectures on the Unity
// Catalog-KV workload (denormalized single-row reads).
func Fig5a(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig5a",
		Title:  "Cost on Unity Catalog-KV (denormalized)",
		Header: []string{"arch", "$/Mreq", "hit_ratio", "storage_share", "saving_vs_Base"},
	}
	var baseCost float64
	for _, arch := range Archs {
		res, err := o.catalogCell(arch, ModeKV)
		if err != nil {
			return nil, err
		}
		if arch == Base {
			baseCost = res.CostPerMReq
		}
		t.AddRow(arch.String(), res.CostPerMReq, res.HitRatio,
			res.StorageCost/res.Report.TotalCost, baseCost/res.CostPerMReq)
	}
	return t, nil
}

// catalogCell runs one catalog-service cell.
func (o FigOptions) catalogCell(arch Arch, mode CatalogMode) (*RunResult, error) {
	m := meter.NewMeter()
	o.cellMeter(m)
	gen := workload.NewUnity(workload.UnityConfig{Tables: o.Tables, Seed: o.Seed})
	// Size caches to 60% of the materialized working set (median 23KB
	// objects, Figure 3a distribution) — see kvCell for the hit-ratio
	// rationale.
	var ws int64
	for i := 0; i < o.Tables; i++ {
		ws += int64(workload.UnityValueSize(i))
	}
	svc, err := NewCatalogService(CatalogServiceConfig{
		ServiceConfig: ServiceConfig{
			Arch:              arch,
			Meter:             m,
			StorageCacheBytes: ws * 15 / 100,
			AppCacheBytes:     ws * 60 / 100,
			RemoteCacheBytes:  ws * 60 / 100,
			AppReplicas:       o.AppReplicas,
			Tracer:            o.Tracer,
			Telemetry:         o.Telemetry,
		},
		Mode:   mode,
		Tables: o.Tables,
		Seed:   o.Seed,
	})
	if err != nil {
		return nil, err
	}
	ops := o.Ops / 3 // rich objects move far more bytes per op
	if ops < 200 {
		ops = 200
	}
	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup: ops / 3, Ops: ops, Prices: o.Prices, Tracer: o.Tracer, Telemetry: o.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	o.emit(fmt.Sprintf("catalog/%s/%s", mode, arch), res)
	return res, nil
}

// Fig5b reproduces Figure 5b: cost across architectures on the Meta-like
// key-value trace (30% writes, ~10B values).
func Fig5b(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig5b",
		Title:  "Cost on Meta-like trace",
		Header: []string{"arch", "$/Mreq", "hit_ratio", "storage_share", "saving_vs_Base"},
	}
	var baseCost float64
	for _, arch := range Archs {
		m := meter.NewMeter()
		o.cellMeter(m)
		gen := workload.NewMetaKV(workload.MetaKVConfig{Keys: o.Keys, Seed: o.Seed})
		var ws int64
		for i := 0; i < o.Keys; i++ {
			ws += int64(workload.MetaValueSize(i)) + 64
		}
		par := o.parFor(arch)
		svcCfg := ServiceConfig{
			Arch:              arch,
			Meter:             m,
			StorageCacheBytes: ws * 15 / 100,
			AppCacheBytes:     ws * 60 / 100,
			RemoteCacheBytes:  ws * 60 / 100,
			AppReplicas:       o.AppReplicas,
			Parallelism:       par,
			Tracer:            o.Tracer,
			Telemetry:         o.Telemetry,
		}
		svc, err := BuildKVService(svcCfg, gen)
		if err != nil {
			return nil, err
		}
		res, err := RunExperimentCfg(svc, m, gen, RunConfig{
			Warmup: o.Warmup, Ops: o.Ops, Parallelism: par, Prices: o.Prices, Tracer: o.Tracer,
			Telemetry: o.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		o.emit("fig5b/"+arch.String(), res)
		if arch == Base {
			baseCost = res.CostPerMReq
		}
		t.AddRow(arch.String(), res.CostPerMReq, res.HitRatio,
			res.StorageCost/res.Report.TotalCost, baseCost/res.CostPerMReq)
	}
	t.Notes = append(t.Notes, "30% writes cap the saving: every write still pays storage and replication")
	return t, nil
}

// Fig6 reproduces Figure 6: the relative CPU breakdown across app server,
// remote cache and storage as value size varies, for each architecture —
// including Linked+Version, whose checks restore storage load (§5.5).
func Fig6(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:    "fig6",
		Title: "CPU breakdown (fraction of busy CPU) by architecture and value size",
		Header: []string{"arch", "value_size", "app", "cache", "storage",
			"storage.sql", "storage.exec", "storage.kv", "storage.raft", "mem_frac"},
	}
	for _, arch := range []Arch{Base, Remote, Linked, LinkedVersion} {
		for _, vs := range []int{1 << 10, 32 << 10, 256 << 10} {
			keys := fig4bKeysFor(vs, o.Keys)
			cfg := workload.SyntheticConfig{Keys: keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: vs, Seed: o.Seed}
			oo := o
			if vs >= 100<<10 {
				oo.Ops = o.Ops / 4
				oo.Warmup = oo.Ops / 3
			}
			res, err := oo.kvCell(arch, cfg)
			if err != nil {
				return nil, err
			}
			rep := res.Report
			totalCores := rep.ComponentCores("")
			frac := func(prefix string) float64 {
				if totalCores == 0 {
					return 0
				}
				return rep.ComponentCores(prefix) / totalCores
			}
			storCores := rep.ComponentCores("storage")
			storFrac := func(sub string) float64 {
				if storCores == 0 {
					return 0
				}
				return rep.ComponentCores(sub) / storCores
			}
			t.AddRow(arch.String(), sizeLabel(vs),
				frac("app"), frac("remotecache"), frac("storage"),
				storFrac("storage.sql"), storFrac("storage.exec"),
				storFrac("storage.kv"), storFrac("storage.raft"),
				rep.MemFraction())
		}
	}
	t.Notes = append(t.Notes,
		"as values grow, write service cost concentrates in storage",
		"storage.sql+exec is the paper's 'query processing' share (40-65% of database CPU)")
	return t, nil
}

// Fig7 reproduces Figure 7: Unity Catalog-Object (rich objects composed
// from 8 SQL queries) across architectures, and the §5.4 comparison of
// Object-mode vs KV-mode savings.
func Fig7(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "fig7",
		Title:  "Cost on Unity Catalog-Object (rich objects, 8 SQL queries per read)",
		Header: []string{"arch", "$/Mreq", "hit_ratio", "saving_vs_Base"},
	}
	costs := make(map[Arch]float64)
	var baseCost float64
	for _, arch := range Archs {
		res, err := o.catalogCell(arch, ModeObject)
		if err != nil {
			return nil, err
		}
		costs[arch] = res.CostPerMReq
		if arch == Base {
			baseCost = res.CostPerMReq
		}
		t.AddRow(arch.String(), res.CostPerMReq, res.HitRatio, baseCost/res.CostPerMReq)
	}
	// The §5.4 punchline: compare Object-mode saving with KV-mode saving.
	kvBase, err := o.catalogCell(Base, ModeKV)
	if err != nil {
		return nil, err
	}
	kvLinked, err := o.catalogCell(Linked, ModeKV)
	if err != nil {
		return nil, err
	}
	objSaving := baseCost / costs[Linked]
	kvSaving := kvBase.CostPerMReq / kvLinked.CostPerMReq
	t.Notes = append(t.Notes,
		fmt.Sprintf("Linked saving: Object %.2fx vs KV %.2fx (ratio %.2fx; paper reports up to 2x wider, up to 8x vs storage)",
			objSaving, kvSaving, objSaving/kvSaving))
	return t, nil
}

// Fig8 reproduces Figure 8: the delayed-writes anomaly, with and without
// write fencing.
func Fig8(o FigOptions) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Delayed writes across a reshard",
		Header: []string{"fencing", "delayed_write_applied", "cache", "storage", "stale"},
	}
	for _, fenced := range []bool{false, true} {
		r := consistency.RunDelayedWriteScenario(fenced)
		t.AddRow(fmt.Sprintf("%v", r.Fenced), fmt.Sprintf("%v", r.DelayedWriteApplied),
			r.CacheValue, r.StorageValue, fmt.Sprintf("%v", r.Stale))
	}
	t.Notes = append(t.Notes, "without fencing the new owner's cache diverges from storage permanently")
	return t, nil
}

// FigConsistency reproduces the §5.5/§6 comparison: the cost of
// consistency across Linked, Linked+Version and the ownership design.
func FigConsistency(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "consistency",
		Title:  "The cost of consistent caching (synthetic, 4KB values, r=90%)",
		Header: []string{"arch", "$/Mreq", "hit_ratio", "storage_$/Mreq", "overhead_vs_Linked"},
	}
	cfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: 4 << 10, Seed: o.Seed}
	var linkedCost float64
	for _, arch := range []Arch{Base, Linked, LinkedTTL, LinkedVersion, LinkedOwned} {
		res, err := o.kvCell(arch, cfg)
		if err != nil {
			return nil, err
		}
		if arch == Linked {
			linkedCost = res.CostPerMReq
		}
		storagePerM := res.CostPerMReq * (res.StorageCost / res.Report.TotalCost)
		overhead := 0.0
		if linkedCost > 0 {
			overhead = res.CostPerMReq / linkedCost
		}
		t.AddRow(arch.String(), res.CostPerMReq, res.HitRatio, storagePerM, overhead)
	}
	t.Notes = append(t.Notes,
		"Linked+Version pays a storage round trip per read: most of the saving is gone (§5.5)",
		"Linked+TTL keeps Linked's economics but bounds staleness instead of eliminating it",
		"ownership leases (§6) recover the saving while preserving linearizable reads")
	return t, nil
}

// FigAblation probes the sensitivity of the headline conclusion (caches
// save money; Linked wins) to the simulator's calibration constants: the
// storage SQL front-end charge and the disk penalty. The conclusion
// should hold across a wide band, not just at the defaults.
func FigAblation(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "ablation",
		Title:  "Calibration ablation: Linked's saving across simulator constants",
		Header: []string{"frontend_work", "disk_per_byte", "Base_$/Mreq", "Linked_$/Mreq", "saving"},
	}
	cfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: 2 << 10, Seed: o.Seed}
	run := func(arch Arch, frontend int, diskPerByte float64) (*RunResult, error) {
		m := meter.NewMeter()
		o.cellMeter(m)
		gen := workload.NewSynthetic(cfg)
		ws := int64(cfg.Keys) * int64(cfg.ValueSize)
		par := o.parFor(arch)
		svc, err := BuildKVService(ServiceConfig{
			Arch:                arch,
			Meter:               m,
			StorageCacheBytes:   ws * 15 / 100,
			AppCacheBytes:       ws * 60 / 100,
			RemoteCacheBytes:    ws * 60 / 100,
			AppReplicas:         o.AppReplicas,
			StorageFrontendWork: frontend,
			DiskPenaltyPerByte:  diskPerByte,
			Parallelism:         par,
			Tracer:              o.Tracer,
			Telemetry:           o.Telemetry,
		}, gen)
		if err != nil {
			return nil, err
		}
		res, err := RunExperimentCfg(svc, m, gen, RunConfig{
			Warmup: o.Warmup / 2, Ops: o.Ops / 2, Parallelism: par, Prices: o.Prices, Tracer: o.Tracer,
			Telemetry: o.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		o.emit(fmt.Sprintf("ablation/%s/fe=%d/disk=%g", arch, frontend, diskPerByte), res)
		return res, nil
	}
	for _, fe := range []int{-1, 16384, 49152, 131072} {
		for _, disk := range []float64{0.25, 1, 4} {
			base, err := run(Base, fe, disk)
			if err != nil {
				return nil, err
			}
			linked, err := run(Linked, fe, disk)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%d", fe)
			if fe < 0 {
				label = "0 (off)"
			}
			t.AddRow(label, disk, base.CostPerMReq, linked.CostPerMReq,
				base.CostPerMReq/linked.CostPerMReq)
		}
	}
	t.Notes = append(t.Notes,
		"the ordering Base > Linked must survive every constant choice; the magnitude moves with them",
		"frontend_work 49152 and disk 1.0 are the defaults used throughout EXPERIMENTS.md")
	return t, nil
}

// FigAllocation tests the paper's second hypothesis (§3): for a fixed
// total memory budget, shifting bytes from the storage-layer block cache
// (s_D) to the application-linked cache (s_A) lowers total cost — "more
// distributed in-memory caches, less storage layer caches".
func FigAllocation(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "allocation",
		Title:  "Fixed memory budget split between linked cache (s_A) and storage cache (s_D)",
		Header: []string{"sA_share", "sA_bytes", "sD_bytes", "$/Mreq", "hit_ratio", "vs_all_storage"},
	}
	cfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: 2 << 10, Seed: o.Seed}
	budget := int64(cfg.Keys) * int64(cfg.ValueSize) * 75 / 100 // 75% of working set, total
	var allStorage float64
	for _, share := range []int{0, 25, 50, 75, 100} {
		sA := budget * int64(share) / 100
		sD := budget - sA
		m := meter.NewMeter()
		o.cellMeter(m)
		gen := workload.NewSynthetic(cfg)
		arch := Linked
		if share == 0 {
			arch = Base // no app cache at all
		}
		par := o.parFor(arch)
		svc, err := BuildKVService(ServiceConfig{
			Arch:              arch,
			Meter:             m,
			StorageCacheBytes: maxInt64(sD, 1),
			AppCacheBytes:     maxInt64(sA, 1),
			AppReplicas:       o.AppReplicas,
			Parallelism:       par,
			Tracer:            o.Tracer,
			Telemetry:         o.Telemetry,
		}, gen)
		if err != nil {
			return nil, err
		}
		res, err := RunExperimentCfg(svc, m, gen, RunConfig{
			Warmup: o.Warmup, Ops: o.Ops, Parallelism: par, Prices: o.Prices, Tracer: o.Tracer,
			Telemetry: o.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		o.emit(fmt.Sprintf("allocation/sA=%d%%", share), res)
		if share == 0 {
			allStorage = res.CostPerMReq
		}
		t.AddRow(fmt.Sprintf("%d%%", share), sA, sD, res.CostPerMReq, res.HitRatio,
			allStorage/res.CostPerMReq)
	}
	t.Notes = append(t.Notes,
		"same total DRAM; moving it next to the application buys more hit ratio per dollar and removes per-query storage CPU",
		"the paper's hypothesis: provision more distributed cache, less storage-layer cache")
	return t, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FigMarginal reproduces the §4 takeaway table: marginal value of app
// cache vs storage cache and the optimal allocation.
func FigMarginal(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:     "marginal",
		Title:  "Model: where to spend the next byte of memory (alpha=1.2)",
		Header: []string{"s_A_GB", "s_D_GB", "|dT/dsA|_$/GB", "|dT/dsD|_$/GB", "favors"},
	}
	m := DefaultModel(1.2)
	for _, sA := range []float64{0, 1 << 30, 4 << 30, 8 << 30} {
		for _, sD := range []float64{1 << 30, 4 << 30} {
			dA, dD := m.MarginalA(sA, sD), m.MarginalD(sA, sD)
			favors := "app cache"
			if abs(dD) > abs(dA) {
				favors = "storage cache"
			}
			const gb = 1 << 30
			t.AddRow(sA/(1<<30), sD/(1<<30), abs(dA)*gb, abs(dD)*gb, favors)
		}
	}
	opt := m.OptimalSA(1<<30, 16<<30)
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimal s_A with s_D=1GB: %.1f GB — provision linked cache until its marginal benefit hits the memory price", opt/(1<<30)))
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Figure is a registered reproduction.
type Figure struct {
	ID    string
	Title string
	Run   func(FigOptions) (*Table, error)
}

// Figures lists every reproduction in presentation order.
var Figures = []Figure{
	{"fig2a", "model: saving vs alpha", Fig2a},
	{"fig2b", "model: saving vs replicas", Fig2b},
	{"fig3", "Unity Catalog trace distributions", Fig3},
	{"fig4a", "cost vs read ratio", Fig4a},
	{"fig4b", "cost vs value size", Fig4b},
	{"fig5a", "Unity Catalog-KV costs", Fig5a},
	{"fig5b", "Meta trace costs", Fig5b},
	{"fig6", "CPU breakdowns", Fig6},
	{"fig7", "Unity Catalog-Object costs", Fig7},
	{"fig8", "delayed writes", Fig8},
	{"consistency", "cost of consistency", FigConsistency},
	{"marginal", "model marginals", FigMarginal},
	{"allocation", "memory split: linked vs storage cache", FigAllocation},
	{"ablation", "calibration sensitivity", FigAblation},
	{"batch", "cost vs multi-key batch size", FigBatch},
	{"chaos", "cost under cache-tier faults", FigChaos},
	{"overload", "open-loop cost and honest latency past saturation", FigOverload},
	{"tailwhy", "stage attribution of the latency tail under overload", FigTailwhy},
	{"hotshard", "dynamic shard management through a popularity flip", FigHotShard},
	{"timeseries", "windowed telemetry through warm-up and a cache kill", FigTimeseries},
	{"tiering", "durable storage: cost vs DRAM:disk split", FigTiering},
	{"elastic", "elastic vs static cache provisioning", FigElastic},
}

// FigureByID returns the registered figure or an error listing options.
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	ids := make([]string, 0, len(Figures))
	for _, f := range Figures {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return Figure{}, fmt.Errorf("core: unknown figure %q (have %v)", id, ids)
}
