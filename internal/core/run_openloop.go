package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// Open-loop driving. The closed-loop runners model a fixed worker pool:
// the next op starts when the last one finishes, so a slow service
// quietly slows its own load generator — the coordinated-omission blind
// spot. The open-loop runner models the paper's "millions of users"
// instead: a deterministic schedule fixes each op's *intended* arrival
// before the run starts, a dispatcher releases ops at those instants
// into bounded per-lane queues, and latency is measured from the
// intended arrival. A stalled server is then charged for every request
// that queued behind the stall, and a saturated server faces the full
// offered rate instead of an automatically throttled one.

// DeadlineWorker is a ServiceWorker that accepts a per-request SLO
// deadline, propagated down the request path (and across transports via
// the trace context) for admission control.
type DeadlineWorker interface {
	ReadDeadline(key string, deadline time.Time) ([]byte, error)
	WriteDeadline(key string, value []byte, deadline time.Time) error
}

// IntendedWorker is a ServiceWorker that accepts each op's intended
// arrival instant (the open-loop schedule slot) before the op runs, so
// the flight recorder can attribute schedule slip to its queue stage and
// measure latency on the intended clock. The runner calls SetIntended
// from the lane's own goroutine only.
type IntendedWorker interface {
	SetIntended(t time.Time)
}

// applyOpDeadline executes one op, attaching the deadline when the
// worker supports it.
func applyOpDeadline(w ServiceWorker, op workload.Op, deadline time.Time) error {
	if !deadline.IsZero() {
		if dw, ok := w.(DeadlineWorker); ok {
			switch op.Kind {
			case workload.Read:
				if _, err := dw.ReadDeadline(op.Key, deadline); err != nil {
					return fmt.Errorf("core: read %q: %w", op.Key, err)
				}
			case workload.Write:
				if err := dw.WriteDeadline(op.Key, ValueFor(op.Key, op.ValueSize), deadline); err != nil {
					return fmt.Errorf("core: write %q: %w", op.Key, err)
				}
			}
			return nil
		}
	}
	return applyOp(w, op)
}

// openLoopStats is what the open-loop runner hands back to the result
// assembler.
type openLoopStats struct {
	name              string // schedule name
	offered, executed int
	clientShed        int64
	span              time.Duration // schedule-intended duration
	wall              time.Duration // dispatch start to last lane drained
	intended, send    []time.Duration
}

// schedOp is one dispatched operation: the op, its intended arrival and
// its SLO deadline.
type schedOp struct {
	op       workload.Op
	intended time.Time
	deadline time.Time
}

// defaultLaneDepth bounds a lane's client-side queue when the config
// does not say otherwise.
const defaultLaneDepth = 1024

// runOpenLoop drives the metered window from an arrival schedule.
// Warmup stays closed-loop (its job is warming caches, not measuring),
// dealt round-robin across the lanes so per-lane connections warm too.
func runOpenLoop(svc Service, m *meter.Meter, gen workload.Generator, cfg RunConfig) (*openLoopStats, error) {
	par := cfg.Parallelism
	depth := cfg.LaneDepth
	if depth <= 0 {
		depth = defaultLaneDepth
	}
	workers := make([]ServiceWorker, par)
	if par == 1 {
		workers[0] = svc
	} else {
		ps, ok := svc.(ParallelService)
		if !ok {
			return nil, fmt.Errorf("core: %T does not support a parallel driver", svc)
		}
		for i := range workers {
			w, err := ps.Worker(i)
			if err != nil {
				return nil, err
			}
			workers[i] = w
		}
	}

	// The whole op stream is drawn up front in generator order and dealt
	// round-robin by arrival index, exactly like the closed-loop parallel
	// driver: the aggregate op multiset is identical at any parallelism
	// and any arrival process.
	stream := make([]workload.Op, cfg.Warmup+cfg.Ops)
	for i := range stream {
		stream[i] = gen.Next()
	}
	arrival := *cfg.Arrival
	sched, err := workload.BuildSchedule(arrival, cfg.Ops)
	if err != nil {
		return nil, err
	}
	reqHist := cfg.Telemetry.Histogram("request.latency", "seconds")

	var started atomic.Int64
	var onOpMu sync.Mutex
	onOp := func() {
		n := started.Add(1) - 1
		if cfg.OnOp != nil {
			onOpMu.Lock()
			cfg.OnOp(int(n))
			onOpMu.Unlock()
		}
	}

	// Closed-loop warmup, sequential over the lanes.
	for i := 0; i < cfg.Warmup; i++ {
		onOp()
		if err := applyOp(workers[i%par], stream[i]); err != nil {
			return nil, err
		}
	}
	runtime.GC()
	m.Reset()
	cfg.Tracer.ResetCounters()
	cfg.Telemetry.Reset()

	type laneRec struct {
		intended, send []time.Duration
		err            error
		executed       int
	}
	chans := make([]chan schedOp, par)
	recs := make([]laneRec, par)
	var wg sync.WaitGroup
	for w := range workers {
		chans[w] = make(chan schedOp, depth)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Pin to an OS thread so the meter's thread-CPU readings for
			// this lane's request path are against one clock.
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			// Label the lane for CPU profiles: `go tool pprof` can then
			// slice samples by architecture and lane.
			labels := pprof.Labels("arch", svc.Arch().String(), "lane", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				iw, _ := workers[w].(IntendedWorker)
				rec := &recs[w]
				for so := range chans[w] {
					if iw != nil {
						iw.SetIntended(so.intended)
					}
					sendT0 := time.Now()
					if err := applyOpDeadline(workers[w], so.op, so.deadline); err != nil {
						rec.err = err
						// Keep draining so the dispatcher never blocks; the
						// remaining ops are not executed.
						for range chans[w] {
						}
						return
					}
					done := time.Now()
					rec.executed++
					dIntended := done.Sub(so.intended)
					reqHist.Observe(int64(dIntended))
					rec.intended = append(rec.intended, dIntended)
					rec.send = append(rec.send, done.Sub(sendT0))
				}
			})
		}(w)
	}

	// Dispatch: release op i at t0 + offset(i) into lane i%par. A full
	// lane drops the op at its arrival instant (client-side shedding):
	// an open-loop client with a bounded buffer, not an unbounded one —
	// so a dead service yields bounded memory and a finite run, and the
	// drop is itself a datum (ClientShed).
	var clientShed int64
	t0 := time.Now()
	for i := 0; i < cfg.Ops; i++ {
		target := t0.Add(sched.Offset(i))
		for {
			rem := time.Until(target)
			if rem <= 0 {
				break
			}
			// Sleep the bulk, spin the tail: timer wake-ups overshoot by
			// tens of microseconds, which at high offered rates would
			// systematically delay every dispatch.
			if rem > 200*time.Microsecond {
				time.Sleep(rem - 100*time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
		onOp()
		var deadline time.Time
		if cfg.SLO > 0 {
			deadline = target.Add(cfg.SLO)
		}
		select {
		case chans[i%par] <- schedOp{op: stream[cfg.Warmup+i], intended: target, deadline: deadline}:
		default:
			clientShed++
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	wall := time.Since(t0)

	ol := &openLoopStats{
		name:       sched.Name(),
		offered:    cfg.Ops,
		clientShed: clientShed,
		span:       sched.Span(),
		wall:       wall,
	}
	for w := range recs {
		if recs[w].err != nil {
			return nil, recs[w].err
		}
		ol.executed += recs[w].executed
		ol.intended = append(ol.intended, recs[w].intended...)
		ol.send = append(ol.send, recs[w].send...)
	}
	return ol, nil
}
