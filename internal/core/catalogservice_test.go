package core

import (
	"bytes"
	"testing"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

func newCatalogSvc(t *testing.T, arch Arch, mode CatalogMode) *CatalogService {
	t.Helper()
	m := meter.NewMeter()
	svc, err := NewCatalogService(CatalogServiceConfig{
		ServiceConfig: ServiceConfig{
			Arch:              arch,
			Meter:             m,
			StorageCacheBytes: 1 << 20,
			AppCacheBytes:     4 << 20,
			RemoteCacheBytes:  4 << 20,
		},
		Mode:       mode,
		Tables:     40,
		StatsBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestCatalogServiceAllArchsAgree(t *testing.T) {
	// Every architecture must produce the identical governance summary
	// for the same table — caching must never change answers.
	for _, mode := range []CatalogMode{ModeObject, ModeKV} {
		var want []byte
		for _, arch := range []Arch{Base, Remote, Linked, LinkedVersion, LinkedOwned} {
			svc := newCatalogSvc(t, arch, mode)
			key := workload.KeyName(7)
			got, err := svc.Read(key)
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, arch, err)
			}
			// Second read exercises the hit path; must not change the
			// answer.
			got2, err := svc.Read(key)
			if err != nil || !bytes.Equal(got, got2) {
				t.Fatalf("%v/%v: hit path diverged (%v)", mode, arch, err)
			}
			if arch == Base {
				want = got
			} else if !bytes.Equal(got, want) {
				t.Fatalf("%v/%v: summary differs from Base", mode, arch)
			}
		}
	}
}

func TestCatalogServiceWriteInvalidates(t *testing.T) {
	for _, arch := range []Arch{Base, Remote, Linked, LinkedVersion, LinkedOwned} {
		t.Run(arch.String(), func(t *testing.T) {
			svc := newCatalogSvc(t, arch, ModeObject)
			key := workload.KeyName(3)
			before, err := svc.Read(key)
			if err != nil {
				t.Fatal(err)
			}
			// Refresh the stats payload; the digest in the summary must
			// change on the next read (no stale cached object served).
			if err := svc.Write(key, ValueFor("new-stats", 2048)); err != nil {
				t.Fatal(err)
			}
			after, err := svc.Read(key)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(before, after) {
				t.Fatalf("%v: summary unchanged after stats write", arch)
			}
			// And stays stable once re-cached.
			again, err := svc.Read(key)
			if err != nil || !bytes.Equal(after, again) {
				t.Fatalf("%v: unstable after re-cache (%v)", arch, err)
			}
		})
	}
}

func TestCatalogServiceModeString(t *testing.T) {
	if ModeObject.String() != "object" || ModeKV.String() != "kv" {
		t.Fatal("CatalogMode.String broken")
	}
}

func TestCatalogServiceBadKey(t *testing.T) {
	svc := newCatalogSvc(t, Base, ModeObject)
	if _, err := svc.Read("nodigits"); err == nil {
		t.Fatal("malformed key should error")
	}
	if _, err := svc.Read(workload.KeyName(99999)); err == nil {
		t.Fatal("out-of-range table should error")
	}
}

func TestCatalogServiceKVModeNotSeededForObject(t *testing.T) {
	// A KV-mode deployment seeds only tables_denorm; the normalized
	// schema is absent, so Object-path internals would fail. The service
	// must stay on its own mode's path.
	svc := newCatalogSvc(t, Base, ModeKV)
	if _, err := svc.Read(workload.KeyName(1)); err != nil {
		t.Fatalf("KV-mode read should work: %v", err)
	}
}
