package core

import (
	"bytes"
	"math"
	"testing"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// smallCfg returns an experiment-scale config: a few hundred keys, caches
// sized to roughly a quarter of the working set.
func smallCfg(arch Arch, m *meter.Meter) ServiceConfig {
	return ServiceConfig{
		Arch:              arch,
		Meter:             m,
		StorageReplicas:   3,
		StorageCacheBytes: 256 << 10,
		AppCacheBytes:     256 << 10,
		RemoteCacheBytes:  256 << 10,
	}
}

func smallGen(seed int64) *workload.Synthetic {
	return workload.NewSynthetic(workload.SyntheticConfig{
		Keys:      300,
		Alpha:     1.2,
		ReadRatio: 0.9,
		ValueSize: 2048,
		Seed:      seed,
	})
}

func TestKVServiceCorrectnessAllArchs(t *testing.T) {
	for _, arch := range []Arch{Base, Remote, Linked, LinkedVersion, LinkedOwned, LinkedTTL} {
		t.Run(arch.String(), func(t *testing.T) {
			m := meter.NewMeter()
			gen := smallGen(1)
			svc, err := BuildKVService(smallCfg(arch, m), gen)
			if err != nil {
				t.Fatal(err)
			}
			// The service replies with the application digest of the
			// value; verify it end-to-end against the preloaded bytes.
			key := workload.KeyName(5)
			want := Digest(ValueFor(key, 2048))
			got, err := svc.Read(key)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("read digest mismatch: %x vs %x", got, want)
			}
			// A write is visible on the next read (read-your-writes at
			// the single client).
			newVal := ValueFor(key+"-v2", 1024)
			if err := svc.Write(key, newVal); err != nil {
				t.Fatal(err)
			}
			got, err = svc.Read(key)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, Digest(newVal)) {
				t.Fatalf("%v: stale read after write", arch)
			}
			// And again after the cache is warm.
			got, err = svc.Read(key)
			if err != nil || !bytes.Equal(got, Digest(newVal)) {
				t.Fatalf("%v: warm read mismatch (%v)", arch, err)
			}
		})
	}
}

func TestRunExperimentProducesReport(t *testing.T) {
	m := meter.NewMeter()
	gen := smallGen(2)
	svc, err := BuildKVService(smallCfg(Linked, m), gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(svc, m, gen, 200, 500, meter.GCP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Report.Requests != 500 {
		t.Fatalf("ops accounting: %+v", res)
	}
	if res.CostPerMReq <= 0 {
		t.Fatal("cost should be positive")
	}
	if res.HitRatio <= 0.3 {
		t.Fatalf("warm zipfian linked cache should hit often, got %v", res.HitRatio)
	}
	if res.AppCores <= 0 || res.StorageCores <= 0 {
		t.Fatalf("cores missing: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("String should render")
	}
}

// runArch is a test helper running one architecture on a fresh meter and
// identical workload stream.
func runArch(t *testing.T, arch Arch, seed int64) *RunResult {
	t.Helper()
	m := meter.NewMeter()
	gen := smallGen(seed)
	svc, err := BuildKVService(smallCfg(arch, m), gen)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(svc, m, gen, 400, 1200, meter.GCP)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHeadlineCostOrdering(t *testing.T) {
	if raceEnabled {
		t.Skip("measured cost ratios are distorted by race-detector instrumentation")
	}
	// The paper's §5.3 finding: Linked < Remote < Base in total cost, with
	// several-fold savings for the cached architectures.
	base := runArch(t, Base, 7)
	remote := runArch(t, Remote, 7)
	linked := runArch(t, Linked, 7)

	if !(linked.CostPerMReq < remote.CostPerMReq) {
		t.Errorf("Linked ($%v) should undercut Remote ($%v)", linked.CostPerMReq, remote.CostPerMReq)
	}
	if !(remote.CostPerMReq < base.CostPerMReq) {
		t.Errorf("Remote ($%v) should undercut Base ($%v)", remote.CostPerMReq, base.CostPerMReq)
	}
	if saving := base.CostPerMReq / linked.CostPerMReq; saving < 1.5 {
		t.Errorf("Linked saving vs Base = %.2fx, expected a clear win", saving)
	}
	// Memory is a visible but minority share for Linked (§5.3 reports
	// 6-22%) and negligible for Base (1-5%).
	if base.Report.MemFraction() > 0.30 {
		t.Errorf("Base memory fraction = %v, should be small", base.Report.MemFraction())
	}
}

func TestVersionCheckErodesSavings(t *testing.T) {
	if raceEnabled {
		t.Skip("measured cost ratios are distorted by race-detector instrumentation")
	}
	// §5.5: Linked+Version gives back most of Linked's advantage.
	linked := runArch(t, Linked, 9)
	versioned := runArch(t, LinkedVersion, 9)
	if !(versioned.CostPerMReq > linked.CostPerMReq*1.3) {
		t.Errorf("version checks should cost real money: linked=$%v versioned=$%v",
			linked.CostPerMReq, versioned.CostPerMReq)
	}
	// The erosion shows up at the storage layer specifically. Compare
	// load-normalized storage cost (cores per run are divided by each
	// run's own elapsed time, so cross-run core counts mislead).
	linkedStorage := linked.StorageCost / linked.Report.QPS()
	versionedStorage := versioned.StorageCost / versioned.Report.QPS()
	if !(versionedStorage > linkedStorage*1.5) {
		t.Errorf("version checks should load storage: linked=%v versioned=%v per unit load",
			linkedStorage, versionedStorage)
	}
}

func TestOwnershipRecoversSavings(t *testing.T) {
	if raceEnabled {
		t.Skip("measured cost ratios are distorted by race-detector instrumentation")
	}
	// §6: ownership leases eliminate the per-read check, restoring most
	// of the linked cache's advantage while staying consistent.
	versioned := runArch(t, LinkedVersion, 11)
	owned := runArch(t, LinkedOwned, 11)
	linked := runArch(t, Linked, 11)
	if !(owned.CostPerMReq < versioned.CostPerMReq) {
		t.Errorf("owned=$%v should undercut versioned=$%v", owned.CostPerMReq, versioned.CostPerMReq)
	}
	// Owned should land near Linked (within 2x), far from Versioned.
	if owned.CostPerMReq > linked.CostPerMReq*2 {
		t.Errorf("owned=$%v should approach linked=$%v", owned.CostPerMReq, linked.CostPerMReq)
	}
}

func TestCatalogObjectVsKVSavingGap(t *testing.T) {
	if raceEnabled {
		t.Skip("measured cost ratios are distorted by race-detector instrumentation")
	}
	// §5.4: caching rich objects (Object mode) buys a bigger relative
	// saving than caching denormalized rows (KV mode).
	run := func(arch Arch, mode CatalogMode) *RunResult {
		m := meter.NewMeter()
		gen := workload.NewUnity(workload.UnityConfig{Tables: 60, Seed: 3})
		svc, err := NewCatalogService(CatalogServiceConfig{
			ServiceConfig: ServiceConfig{
				Arch:              arch,
				Meter:             m,
				StorageCacheBytes: 1 << 20,
				AppCacheBytes:     4 << 20,
				RemoteCacheBytes:  4 << 20,
			},
			Mode:       mode,
			Tables:     60,
			StatsBytes: 8 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunExperiment(svc, m, gen, 150, 400, meter.GCP)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	objBase := run(Base, ModeObject)
	objLinked := run(Linked, ModeObject)
	kvBase := run(Base, ModeKV)
	kvLinked := run(Linked, ModeKV)

	objSaving := objBase.CostPerMReq / objLinked.CostPerMReq
	kvSaving := kvBase.CostPerMReq / kvLinked.CostPerMReq
	if objSaving <= kvSaving {
		t.Errorf("rich-object saving (%.2fx) should exceed KV saving (%.2fx)", objSaving, kvSaving)
	}
	if objSaving < 2 {
		t.Errorf("object-mode saving = %.2fx, expected a multiple", objSaving)
	}
}

func TestModelMarginalsFavorLinkedCache(t *testing.T) {
	// §4 takeaway: |∂T/∂s_A| > |∂T/∂s_D| — a unit of app cache buys more
	// than a unit of storage cache.
	m := DefaultModel(1.2)
	sA, sD := 1.0*(1<<30), 1.0*(1<<30)
	dA, dD := m.MarginalA(sA, sD), m.MarginalD(sA, sD)
	if !(math.Abs(dA) > math.Abs(dD)) {
		t.Fatalf("|dT/dsA|=%v should exceed |dT/dsD|=%v", math.Abs(dA), math.Abs(dD))
	}
	if dA >= 0 {
		t.Fatalf("adding app cache at 1GB should reduce cost, dA=%v", dA)
	}
}

func TestModelSavingPositiveAcrossAlpha(t *testing.T) {
	// Figure 2a: Linked (8GB + 1GB) vs Base (1GB) saves cost across the
	// skew sweep, more at higher skew... saving grows until the cache
	// captures essentially all traffic.
	var prev float64
	for _, alpha := range []float64{0.6, 0.8, 1.0, 1.2, 1.4} {
		m := DefaultModel(alpha)
		saving := m.CostSaving(8<<30, 1<<30, 1<<30)
		if saving <= 1 {
			t.Fatalf("alpha=%v: saving %v should exceed 1", alpha, saving)
		}
		_ = prev
		prev = saving
	}
}

func TestModelSavingSurvivesReplicationAndPrice(t *testing.T) {
	// Figure 2b + §4: even with N_r up to 10 and memory 40x the price,
	// the linked cache still wins.
	for _, nr := range []float64{1, 2, 5, 10} {
		m := DefaultModel(1.2)
		m.Replicas = nr
		if s := m.CostSaving(8<<30, 1<<30, 1<<30); s <= 1 {
			t.Fatalf("N_r=%v: saving %v", nr, s)
		}
	}
	// At 40x memory prices a fixed 8GB allocation may lose, but the
	// paper's claim is about the optimal allocation: adding the right
	// amount of cache still saves.
	m := DefaultModel(1.2)
	m.Prices = meter.GCP.WithMemoryMultiplier(40)
	opt := m.OptimalSA(1<<30, 16<<30)
	if s := m.CostSaving(opt, 1<<30, 1<<30); s <= 1 {
		t.Fatalf("40x memory: optimal-allocation saving %v should still exceed 1 (sA=%v)", s, opt)
	}
	if opt <= 0 {
		t.Fatal("even at 40x memory prices some linked cache should pay off")
	}
}

func TestModelOptimalAllocationUsesAppCache(t *testing.T) {
	m := DefaultModel(1.2)
	opt := m.OptimalSA(1<<30, 16<<30)
	if opt < 1<<30 {
		t.Fatalf("optimal s_A = %v bytes; should provision substantial app cache", opt)
	}
	// At the optimum the marginal is ~0 (bounded by discretization).
	if d := m.MarginalA(opt, 1<<30); math.Abs(d) > 1e-9 {
		// The marginal in $/byte is tiny by construction; just require
		// it to be non-negative past the optimum.
		if d < 0 && opt < 16<<30 {
			t.Fatalf("optimum not at flat point: marginal %v at %v", d, opt)
		}
	}
}

func TestZipfMRMonotone(t *testing.T) {
	mr := ZipfMR(10_000, 1.1, 1024)
	prev := 1.1
	for s := float64(0); s <= 12_000*1024; s += 512 * 1024 {
		v := mr(s)
		if v < 0 || v > 1 {
			t.Fatalf("MR out of range: %v", v)
		}
		if v > prev+1e-12 {
			t.Fatalf("MR must be non-increasing: %v after %v", v, prev)
		}
		prev = v
	}
	if mr(0) != 1 {
		t.Fatalf("MR(0) = %v, want 1", mr(0))
	}
	if mr(20_000*1024) != 0 {
		t.Fatalf("MR(working set) = %v, want 0", mr(20_000*1024))
	}
}

func TestCalibrateFromRun(t *testing.T) {
	m := CalibrateFromRun(4.0, 40_000, ZipfMR(1000, 1.2, 1024))
	perReq := m.CASeconds + m.CDSeconds
	if math.Abs(perReq-4.0/40_000) > 1e-9 {
		t.Fatalf("calibrated per-request CPU = %v, want 1e-4", perReq)
	}
}

func TestValueForDeterministic(t *testing.T) {
	a := ValueFor("k1", 100)
	b := ValueFor("k1", 100)
	if !bytes.Equal(a, b) {
		t.Fatal("ValueFor must be deterministic")
	}
	c := ValueFor("k2", 100)
	if bytes.Equal(a, c) {
		t.Fatal("different keys should differ")
	}
}

func TestArchString(t *testing.T) {
	if Base.String() != "Base" || LinkedVersion.String() != "Linked+Version" {
		t.Fatal("Arch.String broken")
	}
	if Arch(99).String() == "" {
		t.Fatal("unknown arch should render")
	}
}
