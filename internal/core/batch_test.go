package core

import (
	"bytes"
	"testing"
	"time"

	"cachecost/internal/fault"
	"cachecost/internal/meter"
	"cachecost/internal/trace"
	"cachecost/internal/trace/assert"
	"cachecost/internal/workload"
)

// ReadBatch must return exactly what B scalar Reads would, positionally —
// including duplicate keys and out-of-order batches — and WriteBatch must
// be visible to subsequent reads. Covers every architecture, including
// the consistency archs that serve batches through their per-key
// protocols.
func TestBatchReadWriteMatchesScalarAllArchs(t *testing.T) {
	for _, arch := range []Arch{Base, Remote, Linked, LinkedTTL, LinkedVersion, LinkedOwned} {
		t.Run(arch.String(), func(t *testing.T) {
			svc, _ := newTracedKV(t, arch, nil)
			keys := []string{
				workload.KeyName(5), workload.KeyName(0), workload.KeyName(5),
				workload.KeyName(9), workload.KeyName(3),
			}
			batched, err := svc.ReadBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched) != len(keys) {
				t.Fatalf("got %d digests for %d keys", len(batched), len(keys))
			}
			for i, k := range keys {
				scalar, err := svc.Read(k)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(batched[i], scalar) {
					t.Fatalf("slot %d (%s): batch digest %x, scalar %x", i, k, batched[i], scalar)
				}
			}

			wkeys := []string{workload.KeyName(1), workload.KeyName(2)}
			wvals := [][]byte{ValueFor(wkeys[0]+"-b", 256), ValueFor(wkeys[1]+"-b", 256)}
			if err := svc.WriteBatch(wkeys, wvals); err != nil {
				t.Fatal(err)
			}
			for i, k := range wkeys {
				got, err := svc.Read(k)
				if err != nil {
					t.Fatal(err)
				}
				if want := Digest(wvals[i]); !bytes.Equal(got, want) {
					t.Fatalf("after WriteBatch, read %s = %x, want %x", k, got, want)
				}
			}

			if vs, err := svc.ReadBatch(nil); err != nil || vs != nil {
				t.Fatalf("empty batch = %v, %v", vs, err)
			}
			if err := svc.WriteBatch([]string{"k"}, nil); err == nil {
				t.Fatal("mismatched keys/values must error")
			}
		})
	}
}

// The batch path's trace invariants: a B-key batch is ONE client request
// whose per-message counts do NOT scale with B — that is the whole
// amortization claim. A warm Remote batch is still two cache messages
// (one MultiGet round trip), not 2B; a cold one adds one batched storage
// statement and one backfill round trip; a Base batch is one hop and one
// statement; a warm Linked batch never leaves the process.
func TestBatchTraceInvariants(t *testing.T) {
	const B = 8
	keys := func(lo, hi int) []string {
		out := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, workload.KeyName(i))
		}
		return out
	}

	t.Run("RemoteWarm", func(t *testing.T) {
		svc, tr := newTracedKV(t, Remote, nil)
		warmReset(t, svc, tr, B)
		if _, err := svc.ReadBatch(keys(0, B)); err != nil {
			t.Fatal(err)
		}
		assert.PathPerOp(t, tr.PathStats(), 1, trace.PathStats{
			RPCHops: 1, CacheMsgs: 2, CacheHits: B})
		full := tr.Last()
		assert.Parented(t, full)
		assert.SpanCount(t, full, "remotecache", "multiget", 1)
		assert.NoSpans(t, full, "storage.sql", "")
		if t.Failed() {
			t.Log(assert.Describe(full))
		}
	})

	t.Run("RemoteCold", func(t *testing.T) {
		svc, tr := newTracedKV(t, Remote, nil)
		warmReset(t, svc, tr, B)
		if _, err := svc.ReadBatch(keys(B, 2*B)); err != nil {
			t.Fatal(err)
		}
		// MultiGet (all misses) + one batched storage statement + one
		// MultiSet backfill: 3 hops, 4 cache messages, 1 statement.
		assert.PathPerOp(t, tr.PathStats(), 1, trace.PathStats{
			RPCHops: 3, CacheMsgs: 4, SQLStatements: 1, CacheMisses: B})
		full := tr.Last()
		assert.Parented(t, full)
		assert.SpanCount(t, full, "remotecache", "multiget", 1)
		assert.SpanCount(t, full, "storage.sql", "parse", 1)
		assert.Annotated(t, full, "storage.sql", "parse", "batch.keys", "8")
		if t.Failed() {
			t.Log(assert.Describe(full))
		}
	})

	t.Run("Base", func(t *testing.T) {
		svc, tr := newTracedKV(t, Base, nil)
		warmReset(t, svc, tr, B)
		if _, err := svc.ReadBatch(keys(0, B)); err != nil {
			t.Fatal(err)
		}
		assert.PathPerOp(t, tr.PathStats(), 1, trace.PathStats{
			RPCHops: 1, SQLStatements: 1})
		full := tr.Last()
		assert.Parented(t, full)
		assert.Annotated(t, full, "app", "read", "batch.keys", "8")
		if t.Failed() {
			t.Log(assert.Describe(full))
		}
	})

	t.Run("LinkedWarm", func(t *testing.T) {
		svc, tr := newTracedKV(t, Linked, nil)
		warmReset(t, svc, tr, B)
		if _, err := svc.ReadBatch(keys(0, B)); err != nil {
			t.Fatal(err)
		}
		assert.PathPerOp(t, tr.PathStats(), 1, trace.PathStats{LinkedHits: B})
		full := tr.Last()
		assert.Parented(t, full)
		assert.NoSpans(t, full, "rpc", "")
		assert.NoSpans(t, full, "storage.sql", "")
		if t.Failed() {
			t.Log(assert.Describe(full))
		}
	})

	t.Run("RemoteWriteBatch", func(t *testing.T) {
		svc, tr := newTracedKV(t, Remote, nil)
		warmReset(t, svc, tr, B)
		ks := keys(0, 4)
		vals := make([][]byte, len(ks))
		for i, k := range ks {
			vals[i] = ValueFor(k+"-w", 256)
		}
		if err := svc.WriteBatch(ks, vals); err != nil {
			t.Fatal(err)
		}
		// Storage writes stay per-statement (4 hops, 4 statements, 2 raft
		// ships each); the lookaside invalidation collapses to ONE
		// MultiDelete round trip — 2 cache messages, not 8.
		assert.PathPerOp(t, tr.PathStats(), 1, trace.PathStats{
			RPCHops: 5, CacheMsgs: 2, SQLStatements: 4, RaftShips: 8})
		full := tr.Last()
		assert.Parented(t, full)
		assert.SpanCount(t, full, "remotecache", "multidelete", 1)
		if t.Failed() {
			t.Log(assert.Describe(full))
		}
	})
}

// A cache-node blackhole landing mid-run must not drop or double-count
// ops at any batch size: the batch demotes the dead node's keys to
// misses, serves them from one batched storage read, and every op is
// still driven exactly once (any failure would propagate as an error).
func TestBatchChaosDegradesToStorage(t *testing.T) {
	m := meter.NewMeter()
	inj := fault.New(5, fault.Options{Meter: m})
	gen := smallGen(21)
	cfg := smallCfg(Remote, m)
	cfg.Faults = inj
	svc, err := BuildKVService(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	const warmup, ops, B = 200, 800, 8
	sched := fault.NewSchedule([]fault.Event{
		{AtOp: warmup + ops*2/5, Node: CacheNode, Action: fault.ActKill},
		{AtOp: warmup + ops*3/5, Node: CacheNode, Action: fault.ActRevive},
	})
	started := 0
	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup: warmup, Ops: ops, BatchSize: B, Prices: meter.GCP,
		OnOp: func(int) { started++; sched.Step(inj) },
	})
	if err != nil {
		t.Fatal(err) // a dropped op would surface here
	}
	if started != warmup+ops {
		t.Fatalf("OnOp fired %d times, want exactly %d (one per op)", started, warmup+ops)
	}
	if res.Ops != ops {
		t.Fatalf("res.Ops = %d, want %d", res.Ops, ops)
	}
	if svc.Degraded() == 0 {
		t.Fatal("the kill window should have demoted cache batch RPCs to misses")
	}
	if res.HitRatio <= 0 || res.HitRatio >= 1 {
		t.Fatalf("hit ratio %v should be interior: hits before/after the window, misses during", res.HitRatio)
	}
}

// The costing invariant must survive batching: at every batch size the
// busy time attributed across components stays within the metered wall
// clock (no double counting) and covers most of it (no blind spots).
func TestBatchMeteringConservation(t *testing.T) {
	if raceEnabled {
		t.Skip("measured cost ratios are distorted by race-detector instrumentation")
	}
	for _, arch := range []Arch{Base, Remote, Linked} {
		for _, B := range []int{4, 16} {
			m := meter.NewMeter()
			gen := smallGen(13)
			svc, err := BuildKVService(smallCfg(arch, m), gen)
			if err != nil {
				t.Fatal(err)
			}
			batch := func(count int) {
				ops := make([]workload.Op, B)
				for done := 0; done < count; done += B {
					for i := range ops {
						ops[i] = gen.Next()
					}
					if err := applyBatch(svc, ops); err != nil {
						t.Fatal(err)
					}
				}
			}
			batch(304)
			m.Reset()
			t0 := time.Now()
			batch(800)
			elapsed := time.Since(t0)
			busy := m.TotalBusy()
			if busy > elapsed*105/100 {
				t.Fatalf("%v B=%d: attributed busy %v exceeds wall %v: double counting", arch, B, busy, elapsed)
			}
			if busy < elapsed*40/100 {
				t.Fatalf("%v B=%d: attributed busy %v is under 40%% of wall %v: blind spots", arch, B, busy, elapsed)
			}
		}
	}
}

// The batched parallel driver must deal every op exactly once across
// workers and keep per-worker batches on their own lanes.
func TestBatchParallelDriver(t *testing.T) {
	m := meter.NewMeter()
	gen := smallGen(17)
	cfg := smallCfg(Remote, m)
	cfg.Parallelism = 4
	svc, err := BuildKVService(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	const warmup, ops = 200, 1200
	started := 0
	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup: warmup, Ops: ops, Parallelism: 4, BatchSize: 8, Prices: meter.GCP,
		OnOp: func(int) { started++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if started != warmup+ops {
		t.Fatalf("OnOp fired %d times, want %d", started, warmup+ops)
	}
	if res.Parallelism != 4 {
		t.Fatalf("res.Parallelism = %d", res.Parallelism)
	}
	if res.HitRatio <= 0 {
		t.Fatalf("hit ratio = %v, want > 0", res.HitRatio)
	}
	if res.LatencyP99 <= 0 || res.Throughput <= 0 {
		t.Fatalf("latency/throughput not measured: p99=%v tput=%v", res.LatencyP99, res.Throughput)
	}
}
