// Package core is the paper's primary contribution materialized as code:
// the four caching architectures of §2.4 assembled from the substrates
// (mini distributed database, remote cache, linked cache, consistency
// strategies), a metered experiment runner that prices each architecture
// on a workload the way §5.1 does, and the §4 analytic cost model.
package core

import "fmt"

// Arch identifies a caching architecture from Figure 1.
type Arch int

// The architectures compared throughout the evaluation.
const (
	// Base: no application-side caching; every read is a storage query
	// served (at best) from the storage node's block cache (Figure 1a).
	Base Arch = iota
	// Remote: a lookaside remote cache (memcached-style) between the
	// application and storage (Figure 1b).
	Remote
	// Linked: an in-process cache embedded in the application server,
	// sharded across servers (Figure 1c).
	Linked
	// LinkedVersion: Linked plus a per-read version check against
	// storage for linearizable reads (Figure 1d).
	LinkedVersion
	// LinkedOwned: the §6 future-work design — linked cache with
	// auto-sharder ownership leases standing in for per-read checks.
	LinkedOwned
	// LinkedTTL: linked cache with TTL expiry — the industry-standard
	// bounded-staleness compromise the paper's related work surveys (§7).
	LinkedTTL
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case Base:
		return "Base"
	case Remote:
		return "Remote"
	case Linked:
		return "Linked"
	case LinkedVersion:
		return "Linked+Version"
	case LinkedOwned:
		return "Linked+Owned"
	case LinkedTTL:
		return "Linked+TTL"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Archs lists the eventually-consistent architectures of the §5.3 cost
// comparison, in presentation order.
var Archs = []Arch{Base, Remote, Linked}

// ConsistentArchs lists the architectures of the §5.5/§6 consistency
// comparison.
var ConsistentArchs = []Arch{Base, Linked, LinkedVersion, LinkedOwned}

// Service is a deployed application serving reads and writes under some
// architecture. Values are the application-level payloads.
type Service interface {
	// Read returns the value for key.
	Read(key string) ([]byte, error)
	// Write stores a new value for key.
	Write(key string, value []byte) error
	// Arch identifies the assembly.
	Arch() Arch
	// Close releases resources.
	Close() error
}
