package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cachecost/internal/trace"
	"cachecost/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files instead of comparing")

// TestGoldenTrace replays a fixed 20-op script on the Remote
// architecture and compares the normalized span forest byte-for-byte
// against a committed golden file. Any change to the request path —
// a new hop, a reordered span, a dropped annotation — shows up as a
// readable JSON diff. Regenerate with:
//
//	go test ./internal/core -run TestGoldenTrace -update
func TestGoldenTrace(t *testing.T) {
	svc, tr := newTracedKV(t, Remote, nil)
	tr.ResetCounters()
	tr.ResetTraces()

	// A scripted mix: cold misses, warm hits, and invalidating writes.
	// No randomness anywhere, so the span forest is fully deterministic.
	for i := 0; i < 20; i++ {
		key := workload.KeyName(i % invKeys)
		if i%5 == 4 {
			if err := svc.Write(key, ValueFor(key, 256)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if _, err := svc.Read(key); err != nil {
			t.Fatal(err)
		}
	}

	got := trace.Normalize(tr.Traces())
	if len(got) != 20 {
		t.Fatalf("recorded %d traces, want 20", len(got))
	}
	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')

	path := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d traces, %d bytes)", path, len(got), len(buf))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (%v); generate with: go test ./internal/core -run TestGoldenTrace -update", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("trace forest diverged from golden file.\n%s\nRegenerate with -update if the path change is intentional.",
			goldenDiff(want, buf))
	}
}

// goldenDiff renders the first few differing lines of two JSON blobs.
func goldenDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	var out bytes.Buffer
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g []byte
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if bytes.Equal(w, g) {
			continue
		}
		fmt.Fprintf(&out, "line %d:\n  golden: %s\n  got:    %s\n", i+1, w, g)
		if shown++; shown >= 8 {
			fmt.Fprintf(&out, "  ... (further differences elided)\n")
			break
		}
	}
	return out.String()
}
