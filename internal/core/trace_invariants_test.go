package core

import (
	"fmt"
	"sync"
	"testing"

	"cachecost/internal/fault"
	"cachecost/internal/meter"
	"cachecost/internal/trace"
	"cachecost/internal/trace/assert"
	"cachecost/internal/workload"
)

// The tests in this file replay each architecture against the paper's
// path model (§2, Fig. 1) and assert the exact message and statement
// counts the cost analysis is built on. If an instrumentation change or
// a refactor adds a hop — or silently drops one — these fail before any
// cost table shifts.

const invKeys = 16

// newTracedKV builds a service with a sampling tracer and a preloaded
// 16-key store. mutate adjusts the config before construction.
func newTracedKV(t *testing.T, arch Arch, mutate func(*ServiceConfig)) (*KVService, *trace.Tracer) {
	t.Helper()
	m := meter.NewMeter()
	tr := trace.New(trace.Config{Capacity: 256})
	cfg := ServiceConfig{
		Arch:              arch,
		Meter:             m,
		Tracer:            tr,
		StorageReplicas:   3,
		StorageCacheBytes: 256 << 10,
		AppCacheBytes:     256 << 10,
		RemoteCacheBytes:  256 << 10,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := NewKVService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]PreloadItem, invKeys)
	for i := range items {
		items[i] = PreloadItem{Key: workload.KeyName(i), Size: 256}
	}
	if err := svc.Preload(items); err != nil {
		t.Fatal(err)
	}
	return svc, tr
}

// warmReset reads keys [0, n) once to populate caches, then clears the
// counters and the trace ring so assertions observe only what follows.
func warmReset(t *testing.T, svc *KVService, tr *trace.Tracer, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := svc.Read(workload.KeyName(i)); err != nil {
			t.Fatal(err)
		}
	}
	tr.ResetCounters()
	tr.ResetTraces()
}

func readKeys(t *testing.T, svc *KVService, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if _, err := svc.Read(workload.KeyName(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// Base read: one app→storage RPC carrying one SQL statement, served
// under the storage leader's read lease. No cache anywhere.
func TestTraceInvariantBaseRead(t *testing.T) {
	svc, tr := newTracedKV(t, Base, nil)
	warmReset(t, svc, tr, 8)
	readKeys(t, svc, 0, 8)

	assert.PathPerOp(t, tr.PathStats(), 8, trace.PathStats{RPCHops: 1, SQLStatements: 1})
	full := tr.Last()
	assert.Parented(t, full)
	assert.SpanCount(t, full, "rpc", "sql.Query", 1)
	assert.Annotated(t, full, "rpc", "sql.Query", "rpc.hop", "loopback")
	assert.SpanCount(t, full, "storage.sql", "parse", 1)
	assert.SpanCount(t, full, "storage.raft", "lease", 1)
	assert.NoSpans(t, full, "app.cache", "")
	assert.NoSpans(t, full, "remotecache", "")
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// Remote hit: one hop to the cache tier, two cache messages (request
// and response), and the storage tier never sees the key.
func TestTraceInvariantRemoteHit(t *testing.T) {
	svc, tr := newTracedKV(t, Remote, nil)
	warmReset(t, svc, tr, 8) // first touch fills the lookaside cache
	readKeys(t, svc, 0, 8)

	assert.PathPerOp(t, tr.PathStats(), 8, trace.PathStats{RPCHops: 1, CacheMsgs: 2, CacheHits: 1})
	full := tr.Last()
	assert.Parented(t, full)
	assert.Annotated(t, full, "remotecache", "get", "cache.hit", "true")
	assert.NoSpans(t, full, "storage.sql", "")
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// Remote miss: get (miss) + storage load + set-fill — three hops, four
// cache messages, one SQL statement.
func TestTraceInvariantRemoteMiss(t *testing.T) {
	svc, tr := newTracedKV(t, Remote, nil)
	warmReset(t, svc, tr, 8)
	readKeys(t, svc, 8, 16) // never-touched keys: every read misses

	assert.PathPerOp(t, tr.PathStats(), 8, trace.PathStats{
		RPCHops: 3, CacheMsgs: 4, SQLStatements: 1, CacheMisses: 1})
	full := tr.Last()
	assert.Parented(t, full)
	assert.Annotated(t, full, "remotecache", "get", "cache.hit", "false")
	assert.SpanCount(t, full, "remotecache", "set", 1)
	assert.SpanCount(t, full, "storage.sql", "parse", 1)
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// Linked hit: the cache is in-process, so a warm read is zero network
// hops and zero statements — the paper's headline saving.
func TestTraceInvariantLinkedHit(t *testing.T) {
	svc, tr := newTracedKV(t, Linked, nil)
	warmReset(t, svc, tr, 8)
	readKeys(t, svc, 0, 8)

	assert.PathPerOp(t, tr.PathStats(), 8, trace.PathStats{LinkedHits: 1})
	full := tr.Last()
	assert.Parented(t, full)
	assert.Annotated(t, full, "app.cache", "get-or-load", "cache.hit", "true")
	assert.NoSpans(t, full, "rpc", "")
	assert.NoSpans(t, full, "storage.sql", "")
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// Linked+Version warm read: the hit still costs one storage round-trip
// for the version check (§4's consistency tax), visible as one hop and
// one version-check statement under the cache span.
func TestTraceInvariantLinkedVersionRead(t *testing.T) {
	svc, tr := newTracedKV(t, LinkedVersion, nil)
	warmReset(t, svc, tr, 8)
	readKeys(t, svc, 0, 8)

	assert.PathPerOp(t, tr.PathStats(), 8, trace.PathStats{
		RPCHops: 1, SQLStatements: 1, LinkedHits: 1})
	full := tr.Last()
	assert.Parented(t, full)
	assert.Annotated(t, full, "app.cache", "read", "cache.hit", "true")
	assert.Annotated(t, full, "storage.sql", "parse", "sql.op", "version-check")
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// Write fan-out: one app→storage RPC, one statement, and the leader
// ships the entry to N_r−1 = 2 followers before acking.
func TestTraceInvariantWriteFanout(t *testing.T) {
	svc, tr := newTracedKV(t, Base, nil)
	warmReset(t, svc, tr, 8)
	for i := 0; i < 4; i++ {
		key := workload.KeyName(i)
		if err := svc.Write(key, ValueFor(key+"-w", 256)); err != nil {
			t.Fatal(err)
		}
	}

	assert.PathPerOp(t, tr.PathStats(), 4, trace.PathStats{
		RPCHops: 1, SQLStatements: 1, RaftShips: 2})
	full := tr.Last()
	assert.Parented(t, full)
	assert.Annotated(t, full, "storage.raft", "propose", "raft.fanout", "2")
	assert.SpanCount(t, full, "storage.raft", "ship", 2)
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// Chaos degradation: with the in-process cache shard erroring on every
// access, a Linked read records the fault and falls through to storage —
// the trace shows the fault span plus the Base-shaped storage path, and
// the cache itself is never consulted.
func TestTraceInvariantChaosDegraded(t *testing.T) {
	svc, tr := newTracedKV(t, Linked, func(cfg *ServiceConfig) {
		inj := fault.New(1, fault.Options{Meter: cfg.Meter})
		inj.SetRule(LinkedCacheNode, fault.Rule{ErrorRate: 1})
		cfg.Faults = inj
	})
	warmReset(t, svc, tr, 8)
	readKeys(t, svc, 0, 8)

	assert.PathPerOp(t, tr.PathStats(), 8, trace.PathStats{
		Faults: 1, RPCHops: 1, SQLStatements: 1})
	full := tr.Last()
	assert.Parented(t, full)
	assert.Annotated(t, full, "fault", LinkedCacheNode, "fault.outcome", "error")
	assert.SpanCount(t, full, "storage.sql", "parse", 1)
	assert.NoSpans(t, full, "app.cache", "")
	if t.Failed() {
		t.Log(assert.Describe(full))
	}
}

// TestTraceMatrix drives every architecture and consistency mode at
// parallelism 1 and 8 (the in-process archs) and asserts no completed
// trace ever interleaves spans from another request: exactly one root,
// every parent resolves inside the trace, and the request counter
// matches the ops driven. Runs under -race in CI.
func TestTraceMatrix(t *testing.T) {
	type cell struct {
		arch Arch
		par  int
	}
	var cells []cell
	for _, arch := range []Arch{Base, Remote, Linked, LinkedTTL, LinkedVersion, LinkedOwned} {
		cells = append(cells, cell{arch, 1})
	}
	// Worker lanes (parallel drivers) exist for the in-process archs.
	for _, arch := range []Arch{Base, Remote, Linked} {
		cells = append(cells, cell{arch, 8})
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%v/p%d", c.arch, c.par), func(t *testing.T) {
			svc, tr := newTracedKV(t, c.arch, func(cfg *ServiceConfig) {
				cfg.Parallelism = c.par
			})
			const perWorker = 24
			var wg sync.WaitGroup
			errs := make(chan error, c.par)
			for w := 0; w < c.par; w++ {
				var sw ServiceWorker = svc // parallelism 1: the default lane
				if c.par > 1 {
					var err error
					if sw, err = svc.Worker(w); err != nil {
						t.Fatal(err)
					}
				}
				wg.Add(1)
				go func(w int, sw ServiceWorker) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						key := workload.KeyName((w*perWorker + i) % invKeys)
						if i%4 == 3 {
							if err := sw.Write(key, ValueFor(key, 256)); err != nil {
								errs <- err
								return
							}
							continue
						}
						if _, err := sw.Read(key); err != nil {
							errs <- err
							return
						}
					}
				}(w, sw)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if got := tr.PathStats().Requests; got != int64(c.par*perWorker) {
				t.Errorf("counted %d requests, want %d", got, c.par*perWorker)
			}
			traces := tr.Traces()
			if len(traces) == 0 {
				t.Fatal("no traces recorded")
			}
			for _, full := range traces {
				assert.Parented(t, full)
				if t.Failed() {
					t.Fatalf("interleaved trace:\n%s", assert.Describe(full))
				}
			}
		})
	}
}
