package core

import (
	"fmt"

	"cachecost/internal/fault"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/workload"
)

// ChaosConfig parameterizes one chaos cell: an architecture driven
// through a workload while the fault layer abuses its cache tier.
type ChaosConfig struct {
	// Arch selects the assembly (Base runs fault-free as the reference).
	Arch Arch
	// ErrorRate is the cache node's injected transient-error rate.
	ErrorRate float64
	// StallWork is metered stall CPU injected alongside errors (applied
	// at ErrorRate). Default 2048.
	StallWork int
	// KillWindow, when true, kills the cache node for the middle fifth
	// of the metered window and revives it (with slow-start) after —
	// the cache-node-loss episode of the paper's availability argument.
	KillWindow bool
	// Retry wraps the Remote cache connection in the default retry
	// policy.
	Retry bool
	// Seed drives both the fault schedule and the retry jitter.
	Seed int64
}

// ChaosResult bundles a chaos cell's priced outcome with the live fault
// and service handles, so tests can assert on schedules and counters.
type ChaosResult struct {
	*RunResult
	Injector *fault.Injector
	Service  *KVService
}

// faultNodeFor maps an architecture to its cache-tier fault target.
func faultNodeFor(arch Arch) string {
	switch arch {
	case Remote:
		return CacheNode
	case Linked:
		return LinkedCacheNode
	default:
		return ""
	}
}

// ChaosCell assembles one architecture with the fault layer on its cache
// tier and drives it through the synthetic workload. All request failures
// propagate as errors — the acceptance bar is that with degradation in
// place there are none.
func (o FigOptions) ChaosCell(cc ChaosConfig, wcfg workload.SyntheticConfig) (*ChaosResult, error) {
	o.applyDefaults()
	if cc.Seed == 0 {
		cc.Seed = o.Seed
	}
	if cc.StallWork == 0 {
		cc.StallWork = 2048
	}
	m := meter.NewMeter()
	o.cellMeter(m)
	inj := fault.New(cc.Seed, fault.Options{Meter: m})
	node := faultNodeFor(cc.Arch)
	if node != "" {
		inj.SetRule(node, fault.Rule{
			ErrorRate:      cc.ErrorRate,
			StallWork:      cc.StallWork,
			StallRate:      cc.ErrorRate,
			SlowStartCalls: 50,
		})
	}

	gen := workload.NewSynthetic(wcfg)
	ws := int64(wcfg.Keys) * int64(wcfg.ValueSize)
	svcCfg := ServiceConfig{
		Arch:              cc.Arch,
		Meter:             m,
		StorageCacheBytes: ws * 15 / 100,
		AppCacheBytes:     ws * 60 / 100,
		RemoteCacheBytes:  ws * 60 / 100,
		AppReplicas:       o.AppReplicas,
		RetrySeed:         cc.Seed,
		Parallelism:       o.Parallelism,
		Tracer:            o.Tracer,
		Telemetry:         o.Telemetry,
	}
	if node != "" {
		svcCfg.Faults = inj
	}
	if cc.Retry && cc.Arch == Remote {
		svcCfg.CacheRetry = &rpc.RetryPolicy{}
	}
	svc, err := BuildKVService(svcCfg, gen)
	if err != nil {
		return nil, err
	}

	// The kill window is expressed in total driven ops (warmup included),
	// placed inside the metered window: down for ops*[2/5, 3/5). The
	// schedule advances in the driver's serialized per-op hook, so it
	// fires at execution time — correct under any parallelism, and at
	// parallelism 1 exactly the historical step-then-run order.
	var events []fault.Event
	if cc.KillWindow && node != "" {
		events = append(events,
			fault.Event{AtOp: o.Warmup + o.Ops*2/5, Node: node, Action: fault.ActKill},
			fault.Event{AtOp: o.Warmup + o.Ops*3/5, Node: node, Action: fault.ActRevive},
		)
	}
	sched := fault.NewSchedule(events)

	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup:      o.Warmup,
		Ops:         o.Ops,
		Parallelism: o.Parallelism,
		Prices:      o.Prices,
		OnOp:        func(int) { sched.Step(inj) },
		Tracer:      o.Tracer,
		Telemetry:   o.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	o.emit(fmt.Sprintf("chaos/%s/rate=%g", cc.Arch, cc.ErrorRate), res)
	return &ChaosResult{RunResult: res, Injector: inj, Service: svc}, nil
}

// defaultFaultRates is the chaos figure's sweep.
var defaultFaultRates = []float64{0, 0.01, 0.10, 0.50, 1.0}

// FigChaos is the `costbench chaos` scenario: cost per million requests
// and hit ratio for the Remote and Linked architectures as the cache
// tier's fault rate sweeps from zero to total loss, each cell also
// enduring a kill/revive episode. The expected shape: cost rises from
// the fault-free value toward Base's as the fault rate approaches 100%,
// while the service keeps answering every request (degradations, not
// errors).
func FigChaos(o FigOptions) (*Table, error) {
	o.applyDefaults()
	rates := o.FaultRates
	if len(rates) == 0 {
		rates = defaultFaultRates
	}
	t := &Table{
		ID:     "chaos",
		Title:  "Cost under cache-tier faults (synthetic, 1KB values, r=90%)",
		Header: []string{"arch", "fault_rate", "$/Mreq", "hit_ratio", "degraded", "retries", "vs_fault_free", "vs_Base"},
	}
	wcfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: 1 << 10, Seed: o.Seed}

	base, err := o.ChaosCell(ChaosConfig{Arch: Base, Seed: o.Seed}, wcfg)
	if err != nil {
		return nil, err
	}
	t.AddRow(Base.String(), 0.0, base.CostPerMReq, 0.0, 0, 0, 1.0, 1.0)

	for _, arch := range []Arch{Remote, Linked} {
		var faultFree float64
		for _, rate := range rates {
			res, err := o.ChaosCell(ChaosConfig{
				Arch:       arch,
				ErrorRate:  rate,
				KillWindow: rate > 0,
				Retry:      true,
				Seed:       o.Seed,
			}, wcfg)
			if err != nil {
				return nil, fmt.Errorf("chaos %s rate=%v: %w", arch, rate, err)
			}
			if faultFree == 0 {
				faultFree = res.CostPerMReq
			}
			t.AddRow(arch.String(), rate, res.CostPerMReq, res.HitRatio,
				res.Degraded, res.Retries,
				res.CostPerMReq/faultFree, res.CostPerMReq/base.CostPerMReq)
		}
	}
	t.Notes = append(t.Notes,
		"zero client-visible errors at every fault rate: cache errors degrade to storage loads",
		"cost/Mreq climbs from the fault-free value toward Base's as the cache fault rate -> 100%",
		"injected stalls are metered (component 'fault'), so chaos windows show up in the bill")
	return t, nil
}
