package core

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"cachecost/internal/admission"
	"cachecost/internal/cluster"
	"cachecost/internal/consistency"
	"cachecost/internal/fault"
	"cachecost/internal/flight"
	"cachecost/internal/linkedcache"
	"cachecost/internal/meter"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/shardmgr"
	"cachecost/internal/storage"
	"cachecost/internal/storage/sql"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// Fault-target names used when a ServiceConfig carries an Injector: the
// remote cache node and the in-process linked cache (whose "faults" model
// shard loss/restart of the cache an app replica carries).
const (
	CacheNode       = "cache0"
	LinkedCacheNode = "app.cache"
)

// StorageFaultNode is the fault-injection target name of the app→storage
// connection on in-process deployments. A Rule with StallWork against it
// burns metered work on every storage round trip, which the flight
// recorder observes as StageStorage time — the injected fault the tailwhy
// smoke test expects to dominate deadline exemplars.
const StorageFaultNode = "storage0"

// DegradedCounter is the meter counter that counts cache errors demoted
// to misses so the service keeps serving through cache loss.
const DegradedCounter = "cache.degraded"

// RetriesCounter is the meter counter bumped per cache-call retry.
const RetriesCounter = "rpc.retries"

// ShedCounter is the meter counter bumped when the admission gate
// refuses a request because its wait queue is full; the request gets a
// degraded cache-only answer instead of the full path.
const ShedCounter = "admission.shed"

// DeadlineExceededCounter is the meter counter bumped when a request's
// SLO deadline expired at or before admission.
const DeadlineExceededCounter = "admission.deadline"

// AdmissionConfig bounds the service's accepted work under overload: at
// most MaxInflight requests execute the full path concurrently, at most
// QueueDepth wait for a slot, and everything beyond — or anything whose
// propagated deadline expires first — is shed to a degraded cache-only
// answer. See internal/admission.
type AdmissionConfig struct {
	// MaxInflight is the number of concurrently admitted requests.
	// Required (> 0).
	MaxInflight int
	// QueueDepth bounds the wait queue; 0 sheds the instant all slots
	// are busy.
	QueueDepth int
}

// ServiceConfig assembles one architecture deployment for an experiment.
type ServiceConfig struct {
	// Arch selects the assembly.
	Arch Arch
	// Meter receives all component attributions. Required.
	Meter *meter.Meter

	// StorageReplicas is the database replication factor. Default 3.
	StorageReplicas int
	// StorageCacheBytes is the block cache per storage replica (s_D).
	// Default 8 MiB at experiment scale.
	StorageCacheBytes int64
	// AppCacheBytes is the linked cache budget (s_A). Used by Linked*
	// architectures. Default 8 MiB at experiment scale.
	AppCacheBytes int64
	// AppReplicas is the number of application servers the linked cache
	// is replicated/sharded over — it multiplies linked-cache memory in
	// the bill (the model's N_r). Default 1.
	AppReplicas int
	// RemoteCacheBytes is the remote cache budget, used by Remote.
	// Default 8 MiB at experiment scale.
	RemoteCacheBytes int64
	// CacheNodes splits the Remote architecture's cache tier over this
	// many nodes (RemoteCacheBytes divided evenly; same total memory
	// bill). Default 1: the classic single-node wiring, byte-identical
	// to previous behaviour. With > 1 nodes the client routes through a
	// cluster.ShardMap — epoch-stamped keys, replica fan-out — whether
	// or not a shard manager is reshaping it.
	CacheNodes int
	// CacheNodeConcurrency, when > 0, caps each cache node's
	// concurrently served requests (remotecache.ServerConfig's
	// MaxConcurrent): the fixed per-node serving capacity that makes a
	// hot node actually saturate in-process instead of silently
	// borrowing host CPU.
	CacheNodeConcurrency int
	// CacheNodeServeTime, when > 0, occupies one of a cache node's
	// serving slots for that wall-clock duration per request
	// (remotecache.ServerConfig's ServeTime). Together with
	// CacheNodeConcurrency this fixes each node's serving rate, so a
	// node whose demand exceeds it queues in wall-clock time — the
	// physics the hotshard figure measures.
	CacheNodeServeTime time.Duration
	// ShardMgr, when non-nil, runs dynamic shard management over the
	// CacheNodes tier: hot-key detection on the serve path, replica
	// fan-out for hot shards, live migration off overloaded nodes.
	// Requires CacheNodes > 1.
	ShardMgr *ShardMgrConfig
	// RPCCost models transport overhead on every hop.
	RPCCost rpc.CostModel
	// DiskPenaltyPerByte tunes the storage disk model (0 = default).
	DiskPenaltyPerByte float64
	// DiskPenaltyPerOp tunes the storage disk model's per-access charge
	// (0 = default).
	DiskPenaltyPerOp int
	// StorageDurable switches the storage engine to the durable tiered
	// mode (WAL + bloom-filtered SSTables): StorageCacheBytes becomes
	// the DRAM value-tier budget per replica, cold values live on the
	// disk tier, and disk residency is billed at the storage rate.
	StorageDurable bool
	// StorageFrontendWork tunes the storage node's per-statement SQL
	// front-end charge (0 = default; used by the calibration ablation).
	StorageFrontendWork int
	// TTL is the freshness bound for the LinkedTTL architecture.
	// Default 500ms.
	TTL time.Duration

	// Faults, when non-nil, interposes the fault-injection layer on the
	// cache tier: the Remote architecture's cache connection is wrapped
	// under the node name CacheNode, and the Linked architecture's
	// in-process cache is gated under LinkedCacheNode. Cache errors are
	// demoted to misses (counted under DegradedCounter), so the service
	// keeps serving through cache loss as the paper's availability
	// discussion assumes. In-process deployments additionally wrap the
	// app→storage connection under StorageFaultNode, so storage stalls
	// can be injected for the tail-attribution experiments.
	Faults *fault.Injector
	// CacheRetry, when non-nil, wraps the Remote architecture's cache
	// connection in an rpc.RetryConn with this policy (retries are
	// counted under RetriesCounter).
	CacheRetry *rpc.RetryPolicy
	// Admission, when non-nil, interposes an SLO-aware admission gate on
	// the client-facing read/write path: requests past MaxInflight wait
	// in a bounded queue, and overflow or deadline expiry is shed to a
	// degraded cache-only answer (ShedCounter / DeadlineExceededCounter).
	Admission *AdmissionConfig
	// RetrySeed drives the retry layer's jitter sequence. Default 1.
	RetrySeed int64

	// Tracer, when non-nil, records request-path spans and exact path
	// counters (hops, statements, cache messages, raft ships) for every
	// client operation. Nil disables tracing; the instrumented paths then
	// cost one pointer test per layer.
	Tracer *trace.Tracer

	// Flight, when non-nil, is the tail-latency flight recorder: every
	// front-door dispatch gets an always-on stage breakdown (queue,
	// admission, cache, storage, app) and, at completion, the recorder's
	// tail sampler decides whether to retain the request as an exemplar.
	// Nil disables recording; the fast path then costs one nil test per
	// dispatch.
	Flight *flight.Recorder

	// Telemetry, when non-nil, threads a metrics registry through every
	// layer of the deployment: per-message RPC histograms on each loopback
	// and on the storage/cache servers, pull collectors for the cache and
	// storage tiers, and fault-injection tallies. Nil disables telemetry;
	// the instrumented paths then cost one pointer test per record site.
	Telemetry *telemetry.Registry

	// Parallelism pre-builds that many worker lanes (Worker(i)) for the
	// concurrent experiment driver. Each lane has its own front door,
	// storage connection, cache client stack, fault decision stream and
	// attribution context, so concurrent workers share no per-request
	// mutable state beyond the (concurrency-safe) services themselves.
	// Default 1: only the classic single-threaded path, byte-identical
	// to previous behaviour. Supported for Base, Remote and Linked on
	// in-process deployments.
	Parallelism int
}

// ShardMgrConfig parameterizes the dynamic shard manager (see
// internal/shardmgr for the policy).
type ShardMgrConfig struct {
	// Shards is the logical shard count. Default 64.
	Shards int
	// MaxReplicas caps a hot shard's replica set. Default: CacheNodes.
	MaxReplicas int
	// TopK is the hot-key detector's per-stripe counter budget.
	// Default 32.
	TopK int
	// HandoffTicks is how many manager ticks a migration's double-read
	// window stays open. Default 2.
	HandoffTicks int
	// HotFrac is the manager's replication threshold (shardmgr.Config's
	// HotFrac). Zero keeps the manager default.
	HotFrac float64
	// MigrateFrac is the manager's migration threshold (shardmgr.Config's
	// MigrateFrac). Zero keeps the manager default.
	MigrateFrac float64
}

func (c *ServiceConfig) applyDefaults() {
	if c.StorageReplicas <= 0 {
		c.StorageReplicas = 3
	}
	if c.CacheNodes <= 0 {
		c.CacheNodes = 1
	}
	if c.StorageCacheBytes == 0 {
		c.StorageCacheBytes = 8 << 20
	}
	if c.AppCacheBytes == 0 {
		c.AppCacheBytes = 8 << 20
	}
	if c.AppReplicas <= 0 {
		c.AppReplicas = 1
	}
	if c.RemoteCacheBytes == 0 {
		c.RemoteCacheBytes = 8 << 20
	}
	if c.RPCCost == (rpc.CostModel{}) {
		c.RPCCost = rpc.DefaultCost
	}
	if c.TTL <= 0 {
		c.TTL = 500 * time.Millisecond
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
}

// KVService is the synthetic/Meta-trace service: a key-value style
// application (one row per key in the kvdata table) deployed under one of
// the §2.4 architectures. The client-facing surface is itself an RPC
// server, so client↔app communication is paid like every other hop.
type KVService struct {
	cfg     ServiceConfig
	m       *meter.Meter
	appComp *meter.Component

	node *storage.Node
	db   *storage.Client

	rcServer *remotecache.Server
	rc       *remotecache.Client

	// Multi-node cache tier (CacheNodes > 1): servers by shard-map node
	// name, the shared placement map, and — when ShardMgr is configured
	// — the detector feeding the manager.
	rcServers map[string]*remotecache.Server
	smap      *cluster.ShardMap
	detector  *shardmgr.Detector
	shardMgr  *shardmgr.Manager
	retries   []*rpc.RetryConn // per-node retry layers (multi-node default lane)

	lc      *linkedcache.Cache[[]byte]
	vc      *consistency.VersionedCache[[]byte]
	oc      *consistency.OwnedCache[[]byte]
	tc      *consistency.TTLCache[[]byte]
	sharder *cluster.Sharder

	retry    *rpc.RetryConn // cache retry layer, when configured
	degraded *meter.Counter // cache errors demoted to misses

	// Admission control, when configured: one gate shared by every lane
	// (slots are a service-level resource), with shed/deadline counters
	// on both the meter (reset at the metered-window boundary, surfaced
	// in RunResult) and the telemetry registry (live scrapes).
	gate       *admission.Gate
	shedCtr    *meter.Counter
	dlCtr      *meter.Counter
	telShed    *telemetry.Counter
	telExpired *telemetry.Counter
	// Service-level cache accounting: reads that consulted the cache
	// tier and reads it served. Unlike the caches' internal stats these
	// see degraded (fault-skipped) lookups, so hit ratio falls as the
	// fault rate rises.
	cacheReads, cacheHits atomic.Int64

	front *rpc.Server // client-facing

	// def is the classic single-threaded lane (default fault stream, no
	// attribution context); lanes are the pre-built worker lanes when
	// Parallelism > 1.
	def   kvLane
	lanes []*kvLane

	// intendedNS is the default lane's pending intended arrival instant
	// (see KVWorker.SetIntended); the single-threaded open-loop driver is
	// its only writer and reader.
	intendedNS int64

	// obs, when set (before traffic starts), observes every successful
	// read — the elastic controller's demand feed.
	obs func(key string, size int64)
}

// kvLane is one request path through the service: a front door whose
// handlers are bound to this lane's private connections, fault decision
// stream and attribution context. The default lane (worker -1, nil attr)
// reproduces the historical single-threaded behaviour exactly; worker
// lanes give the concurrent driver contention-free, deterministic and
// tightly-attributed request paths.
type kvLane struct {
	w     int            // fault decision stream; -1 = default
	attr  *meter.AttrCtx // per-goroutine attribution; nil on the default lane
	front *rpc.Server
	db    *storage.Client
	rc    *remotecache.Client // Remote only
	retry *rpc.RetryConn      // Remote with CacheRetry only
}

// NewKVService builds a single-process deployment: the storage node and
// (for Remote) the cache node are constructed in-process and wired over
// loopback transports. See NewKVServiceRemote for distributed wiring.
func NewKVService(cfg ServiceConfig) (*KVService, error) {
	cfg.applyDefaults()
	if cfg.Meter == nil {
		return nil, fmt.Errorf("core: ServiceConfig.Meter is required")
	}
	if cfg.ShardMgr != nil && cfg.CacheNodes < 2 {
		return nil, fmt.Errorf("core: ShardMgr requires CacheNodes > 1")
	}
	s := &KVService{cfg: cfg, m: cfg.Meter}
	s.appComp = cfg.Meter.Component("app")

	s.node = storage.NewNode(storage.Config{
		Replicas:           cfg.StorageReplicas,
		BlockCacheBytes:    cfg.StorageCacheBytes,
		Meter:              cfg.Meter,
		DiskPenaltyPerByte: cfg.DiskPenaltyPerByte,
		DiskPenaltyPerOp:   cfg.DiskPenaltyPerOp,
		FrontendWork:       cfg.StorageFrontendWork,
		Durable:            cfg.StorageDurable,
		Tracer:             cfg.Tracer,
		Telemetry:          cfg.Telemetry,
	})
	// The app talks to storage over a loopback hop; the app pays its
	// client-side transport overhead. All in-process loopbacks share one
	// per-transport metrics family, so process-level scrapes see the
	// merged message stream.
	lbm := rpc.NewMetrics(cfg.Telemetry, "loopback")
	dbLoop := rpc.NewLoopback(s.node.Server(), s.appComp, meter.NewBurner(), cfg.RPCCost)
	dbLoop.SetMetrics(lbm)
	var dbConn rpc.Conn = dbLoop
	if cfg.Faults != nil {
		dbConn = cfg.Faults.Wrap(StorageFaultNode, dbConn)
	}
	s.db = storage.NewClient(dbConn)

	var cacheConn rpc.Conn
	if cfg.Arch == Remote {
		if cfg.CacheNodes > 1 {
			if err := s.buildCacheTier(); err != nil {
				return nil, err
			}
		} else {
			s.rcServer = remotecache.NewServer(remotecache.ServerConfig{
				CapacityBytes: cfg.RemoteCacheBytes,
				Meter:         cfg.Meter,
				Name:          "remotecache",
				RPCCost:       cfg.RPCCost,
				Tracer:        cfg.Tracer,
				Telemetry:     cfg.Telemetry,
				MaxConcurrent: cfg.CacheNodeConcurrency,
				ServeTime:     cfg.CacheNodeServeTime,
			})
			cacheLoop := rpc.NewLoopback(s.rcServer.RPCServer(), s.appComp, meter.NewBurner(), cfg.RPCCost)
			cacheLoop.SetMetrics(lbm)
			cacheConn = cacheLoop
		}
	}
	if err := s.finish(cacheConn); err != nil {
		return nil, err
	}
	if err := s.node.Bootstrap([]string{
		"CREATE TABLE kvdata (k TEXT PRIMARY KEY, v BLOB)",
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// RemoteEndpoints carries pre-established connections to already-running
// cluster components, for distributed deployments (cmd/appserver).
type RemoteEndpoints struct {
	// DB connects to a storage node (cmd/storeserver).
	DB rpc.Conn
	// Cache connects to a remote cache node (cmd/cacheserver); required
	// only for the Remote architecture.
	Cache rpc.Conn
}

// NewKVServiceRemote builds an application server against remote storage
// and cache nodes. The schema is created if missing; preloading goes
// through SQL (the remote node's metering is its own concern).
func NewKVServiceRemote(cfg ServiceConfig, eps RemoteEndpoints) (*KVService, error) {
	cfg.applyDefaults()
	if cfg.Meter == nil {
		return nil, fmt.Errorf("core: ServiceConfig.Meter is required")
	}
	if eps.DB == nil {
		return nil, fmt.Errorf("core: RemoteEndpoints.DB is required")
	}
	if cfg.Arch == Remote && eps.Cache == nil {
		return nil, fmt.Errorf("core: the Remote architecture needs RemoteEndpoints.Cache")
	}
	if cfg.Parallelism > 1 {
		return nil, fmt.Errorf("core: Parallelism > 1 requires an in-process deployment")
	}
	if cfg.CacheNodes > 1 {
		return nil, fmt.Errorf("core: CacheNodes > 1 requires an in-process deployment")
	}
	s := &KVService{cfg: cfg, m: cfg.Meter}
	s.appComp = cfg.Meter.Component("app")
	s.db = storage.NewClient(eps.DB)
	if err := s.finish(eps.Cache); err != nil {
		return nil, err
	}
	if _, err := s.db.Exec("CREATE TABLE IF NOT EXISTS kvdata (k TEXT PRIMARY KEY, v BLOB)"); err != nil {
		return nil, err
	}
	return s, nil
}

// cacheNodeName is the shard-map name of cache node i ("c0", "c1", …).
func cacheNodeName(i int) string { return "c" + strconv.Itoa(i) }

// CacheFaultNode is the fault-injection target name of cache node i in
// a multi-node tier ("cache0" matches the single-node CacheNode).
func CacheFaultNode(i int) string { return "cache" + strconv.Itoa(i) }

// buildCacheTier constructs the CacheNodes > 1 remote tier: one server
// per node (each metered as "remotecache.c<i>", so the bill's
// remotecache rollup is unchanged), the shared shard map seeded from a
// consistent-hash ring, and — when ShardMgr is configured — the hot-key
// detector on every node's serve path plus the manager that reshapes
// the map. The total memory bill equals the single-node tier's:
// RemoteCacheBytes split evenly.
func (s *KVService) buildCacheTier() error {
	cfg := s.cfg
	names := make([]string, cfg.CacheNodes)
	for i := range names {
		names[i] = cacheNodeName(i)
	}
	shards, topK, maxReplicas, handoffTicks := 64, 32, cfg.CacheNodes, 2
	if mc := cfg.ShardMgr; mc != nil {
		if mc.Shards > 0 {
			shards = mc.Shards
		}
		if mc.TopK > 0 {
			topK = mc.TopK
		}
		if mc.MaxReplicas > 0 {
			maxReplicas = mc.MaxReplicas
		}
		if mc.HandoffTicks > 0 {
			handoffTicks = mc.HandoffTicks
		}
		s.detector = shardmgr.NewDetector(topK)
	}
	smap, err := cluster.NewShardMap(shards, names, 64)
	if err != nil {
		return err
	}
	s.smap = smap
	perNode := cfg.RemoteCacheBytes / int64(cfg.CacheNodes)
	s.rcServers = make(map[string]*remotecache.Server, cfg.CacheNodes)
	var hot remotecache.KeyRecorder
	if s.detector != nil {
		hot = s.detector
	}
	for _, n := range names {
		s.rcServers[n] = remotecache.NewServer(remotecache.ServerConfig{
			CapacityBytes: perNode,
			Meter:         cfg.Meter,
			Name:          "remotecache." + n,
			RPCCost:       cfg.RPCCost,
			Tracer:        cfg.Tracer,
			Telemetry:     cfg.Telemetry,
			MaxConcurrent: cfg.CacheNodeConcurrency,
			ServeTime:     cfg.CacheNodeServeTime,
			Hot:           hot,
		})
	}
	if cfg.ShardMgr != nil {
		mgr, err := shardmgr.New(shardmgr.Config{
			Map:          smap,
			Detector:     s.detector,
			Registry:     cfg.Telemetry,
			MaxReplicas:  maxReplicas,
			HandoffTicks: handoffTicks,
			HotFrac:      cfg.ShardMgr.HotFrac,
			MigrateFrac:  cfg.ShardMgr.MigrateFrac,
		})
		if err != nil {
			return err
		}
		s.shardMgr = mgr
	}
	return nil
}

// routedCacheClient builds one lane's client stack over the multi-node
// tier: a private loopback per node, fault wrapping per node (targets
// CacheFaultNode(i); worker lanes draw from their own decision
// streams), a per-node retry layer, and the shard-map router on top.
func (s *KVService) routedCacheClient(lbm *rpc.Metrics, attr *meter.AttrCtx, worker int) (*remotecache.Client, []*rpc.RetryConn, error) {
	cfg := s.cfg
	conns := make(map[string]rpc.Conn, cfg.CacheNodes)
	var retries []*rpc.RetryConn
	for i := 0; i < cfg.CacheNodes; i++ {
		n := cacheNodeName(i)
		lb := rpc.NewLoopback(s.rcServers[n].RPCServer(), s.appComp, meter.NewBurner(), cfg.RPCCost)
		lb.SetAttrCtx(attr)
		lb.SetMetrics(lbm)
		var conn rpc.Conn = lb
		if cfg.Faults != nil {
			if worker < 0 {
				conn = cfg.Faults.Wrap(CacheFaultNode(i), conn)
			} else {
				fc := cfg.Faults.WrapWorker(CacheFaultNode(i), worker, conn)
				fc.SetAttrCtx(attr)
				conn = fc
			}
		}
		if cfg.CacheRetry != nil {
			policy := *cfg.CacheRetry
			if policy.RetryCounter == nil {
				policy.RetryCounter = s.m.Counter(RetriesCounter)
			}
			seed := cfg.RetrySeed + int64(worker+1)*int64(cfg.CacheNodes) + int64(i)
			rt := rpc.NewRetryConn(conn, policy, seed, s.appComp, meter.NewBurner())
			rt.SetAttrCtx(attr)
			retries = append(retries, rt)
			conn = rt
		}
		conns[n] = conn
	}
	c, err := remotecache.NewRoutedClient(conns, s.smap)
	if err != nil {
		return nil, nil, err
	}
	c.Degrade(s.degraded)
	c.SetTelemetry(cfg.Telemetry)
	return c, retries, nil
}

// finish wires the architecture's cache layer and the client-facing front
// door. cacheConn is non-nil only for the Remote architecture.
func (s *KVService) finish(cacheConn rpc.Conn) error {
	cfg := s.cfg
	s.degraded = s.m.Counter(DegradedCounter)
	if cfg.Faults != nil {
		cfg.Faults.RegisterTelemetry(cfg.Telemetry)
	}
	if cfg.Admission != nil {
		if cfg.Admission.MaxInflight <= 0 {
			return fmt.Errorf("core: AdmissionConfig.MaxInflight must be positive")
		}
		s.gate = admission.NewGate(cfg.Admission.MaxInflight, cfg.Admission.QueueDepth, nil)
		s.shedCtr = s.m.Counter(ShedCounter)
		s.dlCtr = s.m.Counter(DeadlineExceededCounter)
		s.telShed = cfg.Telemetry.Counter("admission.shed")
		s.telExpired = cfg.Telemetry.Counter("admission.deadline_exceeded")
		if cfg.Telemetry != nil {
			gate := s.gate
			cfg.Telemetry.RegisterCollector("admission", func(emit func(telemetry.Sample)) {
				st := gate.Stats()
				emit(telemetry.Sample{Name: "admission.inflight", Kind: telemetry.KindGauge, Value: float64(st.Inflight)})
				emit(telemetry.Sample{Name: "admission.waiting", Kind: telemetry.KindGauge, Value: float64(st.Waiting)})
				emit(telemetry.Sample{Name: "admission.offered", Kind: telemetry.KindCounter, Value: float64(st.Offered)})
				emit(telemetry.Sample{Name: "admission.admitted", Kind: telemetry.KindCounter, Value: float64(st.Admitted)})
			})
		}
	}
	switch cfg.Arch {
	case Remote:
		if s.smap != nil {
			// Multi-node tier: the default lane gets its own routed client
			// stack (per-node loopback + faults + retries under the map).
			rc, retries, err := s.routedCacheClient(rpc.NewMetrics(cfg.Telemetry, "loopback"), nil, -1)
			if err != nil {
				return err
			}
			s.rc = rc
			s.retries = retries
			break
		}
		// Robustness layering, innermost first: fault injection at the
		// cache node, budgeted retries above it, graceful degradation in
		// the client above that — the stack a production lookaside
		// client carries.
		if cfg.Faults != nil {
			cacheConn = cfg.Faults.Wrap(CacheNode, cacheConn)
		}
		if cfg.CacheRetry != nil {
			policy := *cfg.CacheRetry
			if policy.RetryCounter == nil {
				policy.RetryCounter = s.m.Counter(RetriesCounter)
			}
			s.retry = rpc.NewRetryConn(cacheConn, policy, cfg.RetrySeed, s.appComp, meter.NewBurner())
			cacheConn = s.retry
		}
		s.rc = remotecache.NewSingleClient(cacheConn)
		s.rc.Degrade(s.degraded)
		s.rc.SetTelemetry(cfg.Telemetry)
	case Linked:
		s.lc = linkedcache.New(linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
			Telemetry:     cfg.Telemetry,
		}, func(k string, v []byte) int64 { return int64(len(k) + len(v) + 64) })
		s.scaleLinkedMemory()
	case LinkedVersion:
		s.vc = consistency.NewVersionedCache[[]byte](linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
			Telemetry:     cfg.Telemetry,
		}, func(k string, v []byte) int64 { return int64(len(k) + len(v) + 64) })
		s.scaleLinkedMemory()
	case LinkedOwned:
		s.sharder = cluster.NewSharder(64)
		s.oc = consistency.NewOwnedCache[[]byte]("app0", s.sharder, linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
			Telemetry:     cfg.Telemetry,
		}, func(k string, v []byte) int64 { return int64(len(k) + len(v) + 64) })
		s.scaleLinkedMemory()
	case LinkedTTL:
		s.tc = consistency.NewTTLCache[[]byte](linkedcache.Config{
			CapacityBytes: cfg.AppCacheBytes,
			Meter:         cfg.Meter,
			Name:          "app.cache",
			Telemetry:     cfg.Telemetry,
		}, cfg.TTL, func(k string, v []byte) int64 { return int64(len(k) + len(v) + 64) })
		s.scaleLinkedMemory()
	}

	// The default lane mirrors the classic single-threaded service: the
	// shared connections, the default fault stream, no attribution
	// context.
	s.def = kvLane{w: -1, db: s.db, rc: s.rc, retry: s.retry}
	s.front = s.newFront(&s.def)
	s.def.front = s.front

	if cfg.Parallelism > 1 {
		return s.buildLanes()
	}
	return nil
}

// newFront builds a client-facing front door whose handlers run on lane l.
func (s *KVService) newFront(l *kvLane) *rpc.Server {
	front := rpc.NewServer(s.appComp, meter.NewBurner(), s.cfg.RPCCost)
	front.SetMeterHandlerBody(false)
	if s.cfg.Flight != nil {
		front.SetFlight(s.cfg.Flight.Scope(s.cfg.Arch.String()))
	}
	front.HandleCtx("app.Read", func(sc trace.SpanContext, req []byte) ([]byte, error) { return s.handleRead(l, sc, req) })
	front.HandleCtx("app.Write", func(sc trace.SpanContext, req []byte) ([]byte, error) { return s.handleWrite(l, sc, req) })
	front.HandleCtx("app.ReadBatch", func(sc trace.SpanContext, req []byte) ([]byte, error) { return s.handleReadBatch(l, sc, req) })
	front.HandleCtx("app.WriteBatch", func(sc trace.SpanContext, req []byte) ([]byte, error) { return s.handleWriteBatch(l, sc, req) })
	return front
}

// buildLanes pre-builds cfg.Parallelism worker lanes. Each lane owns a
// private storage connection and (for Remote) a private cache client
// stack — loopback, worker-scoped fault stream, worker-seeded retry layer
// — all bound to the lane's attribution context. Keeping the stacks
// private is what makes per-worker fault schedules deterministic: a
// worker's decisions never interleave into another worker's stream.
func (s *KVService) buildLanes() error {
	cfg := s.cfg
	switch cfg.Arch {
	case Base, Remote, Linked:
	default:
		return fmt.Errorf("core: Parallelism > 1 is not supported for the %v architecture", cfg.Arch)
	}
	if s.node == nil {
		return fmt.Errorf("core: Parallelism > 1 requires an in-process deployment")
	}
	s.lanes = make([]*kvLane, cfg.Parallelism)
	lbm := rpc.NewMetrics(cfg.Telemetry, "loopback")
	for i := range s.lanes {
		l := &kvLane{w: i, attr: s.m.NewAttrCtx()}
		dbLoop := rpc.NewLoopback(s.node.Server(), s.appComp, meter.NewBurner(), cfg.RPCCost)
		dbLoop.SetAttrCtx(l.attr)
		dbLoop.SetMetrics(lbm)
		var dbConn rpc.Conn = dbLoop
		if cfg.Faults != nil {
			fc := cfg.Faults.WrapWorker(StorageFaultNode, i, dbConn)
			fc.SetAttrCtx(l.attr)
			dbConn = fc
		}
		l.db = storage.NewClient(dbConn)
		if cfg.Arch == Remote && s.smap != nil {
			rc, retries, err := s.routedCacheClient(lbm, l.attr, i)
			if err != nil {
				return err
			}
			l.rc = rc
			s.retries = append(s.retries, retries...)
		} else if cfg.Arch == Remote {
			lb := rpc.NewLoopback(s.rcServer.RPCServer(), s.appComp, meter.NewBurner(), cfg.RPCCost)
			lb.SetAttrCtx(l.attr)
			lb.SetMetrics(lbm)
			var cacheConn rpc.Conn = lb
			if cfg.Faults != nil {
				fc := cfg.Faults.WrapWorker(CacheNode, i, cacheConn)
				fc.SetAttrCtx(l.attr)
				cacheConn = fc
			}
			if cfg.CacheRetry != nil {
				policy := *cfg.CacheRetry
				if policy.RetryCounter == nil {
					policy.RetryCounter = s.m.Counter(RetriesCounter)
				}
				rt := rpc.NewRetryConn(cacheConn, policy, cfg.RetrySeed+int64(i), s.appComp, meter.NewBurner())
				rt.SetAttrCtx(l.attr)
				l.retry = rt
				cacheConn = rt
			}
			l.rc = remotecache.NewSingleClient(cacheConn)
			l.rc.Degrade(s.degraded)
			l.rc.SetTelemetry(cfg.Telemetry)
		}
		l.front = s.newFront(l)
		s.lanes[i] = l
	}
	return nil
}

// KVWorker is one pre-built parallel lane of a KVService, handed to one
// driver goroutine. Its Read/Write go through the lane's own front door,
// so every hop's transport charge, fault decision and retry draw stays on
// this worker's deterministic stream.
type KVWorker struct {
	s *KVService
	l *kvLane
	// intendedNS is the next operation's intended arrival instant (unix
	// nanoseconds), set by the open-loop driver via SetIntended before
	// each op. The lane's driver goroutine is the only writer and reader,
	// so a plain field suffices. Zero (closed loop) leaves the flight
	// recorder's queue stage at zero.
	intendedNS int64
}

// SetIntended records the next operation's intended arrival instant (the
// open-loop schedule slot). The flight recorder measures queue wait —
// schedule slip before the handler started — and intended-clock latency
// from it. The zero time clears it.
func (w *KVWorker) SetIntended(t time.Time) {
	if t.IsZero() {
		w.intendedNS = 0
		return
	}
	w.intendedNS = t.UnixNano()
}

// withIntended stamps the pending intended instant (if any) onto a fresh
// request context.
func (w *KVWorker) withIntended(sc trace.SpanContext) trace.SpanContext {
	if w.intendedNS != 0 {
		return sc.WithIntendedUnixNano(w.intendedNS)
	}
	return sc
}

// Worker returns lane i. The service must have been built with
// Parallelism > i.
func (s *KVService) Worker(i int) (ServiceWorker, error) {
	if i < 0 || i >= len(s.lanes) {
		return nil, fmt.Errorf("core: worker %d of %d-lane service", i, len(s.lanes))
	}
	return &KVWorker{s: s, l: s.lanes[i]}, nil
}

// Read drives a client read through the worker's lane. Each worker's
// requests open their own root span, so concurrent traces never share
// spans.
func (w *KVWorker) Read(key string) ([]byte, error) {
	sc, act := w.s.cfg.Tracer.StartRequest("read")
	v, err := frontRead(w.withIntended(sc), w.l.front, key)
	act.End()
	return v, err
}

// Write drives a client write through the worker's lane.
func (w *KVWorker) Write(key string, value []byte) error {
	sc, act := w.s.cfg.Tracer.StartRequest("write")
	err := frontWrite(w.withIntended(sc), w.l.front, key, value)
	act.End()
	return err
}

// ReadDeadline implements DeadlineWorker: the deadline rides the span
// context through the front door (and any transport) to the admission
// gate.
func (w *KVWorker) ReadDeadline(key string, deadline time.Time) ([]byte, error) {
	sc, act := w.s.cfg.Tracer.StartRequest("read")
	v, err := frontRead(w.withIntended(sc).WithDeadline(deadline), w.l.front, key)
	act.End()
	return v, err
}

// WriteDeadline implements DeadlineWorker.
func (w *KVWorker) WriteDeadline(key string, value []byte, deadline time.Time) error {
	sc, act := w.s.cfg.Tracer.StartRequest("write")
	err := frontWrite(w.withIntended(sc).WithDeadline(deadline), w.l.front, key, value)
	act.End()
	return err
}

// scaleLinkedMemory bills the linked cache once per application server.
// Tiers that can resize at runtime route through SetBilledReplicas so a
// later Resize re-prices budget × replicas instead of reverting to the
// construction-time level; the others price the static configuration
// directly.
func (s *KVService) scaleLinkedMemory() {
	switch {
	case s.lc != nil:
		s.lc.SetBilledReplicas(s.cfg.AppReplicas)
	case s.tc != nil:
		s.tc.SetBilledReplicas(s.cfg.AppReplicas)
	default:
		s.m.Component("app.cache").SetMemBytes(s.cfg.AppCacheBytes * int64(s.cfg.AppReplicas))
	}
}

// LinkedCache returns the Linked tier's cache, or nil on other
// architectures. The elastic controller resizes through it.
func (s *KVService) LinkedCache() *linkedcache.Cache[[]byte] { return s.lc }

// TTLTier returns the LinkedTTL tier's cache, or nil on other
// architectures.
func (s *KVService) TTLTier() *consistency.TTLCache[[]byte] { return s.tc }

// RemoteCacheServer returns the single-node Remote tier's cache server,
// or nil (other architectures, or CacheNodes > 1).
func (s *KVService) RemoteCacheServer() *remotecache.Server { return s.rcServer }

// SetAccessObserver installs a hook observing every successful read's
// key and approximate cached-entry footprint — the elastic controller's
// demand feed. Install it before traffic starts; it is read without
// synchronization on the hot path.
func (s *KVService) SetAccessObserver(fn func(key string, size int64)) { s.obs = fn }

// Front returns the client-facing RPC server.
func (s *KVService) Front() *rpc.Server { return s.front }

// ShardManager returns the dynamic shard manager (nil unless ShardMgr
// was configured). The experiment driver calls its Tick on the cadence
// it wants — ticks are not time-based, so runs stay deterministic.
func (s *KVService) ShardManager() *shardmgr.Manager { return s.shardMgr }

// ShardMap returns the multi-node tier's placement map (nil for
// single-node deployments).
func (s *KVService) ShardMap() *cluster.ShardMap { return s.smap }

// HotKeys returns the detector's current top-n served keys with their
// epoch stamps stripped (nil without a ShardMgr config).
func (s *KVService) HotKeys(n int) []shardmgr.HotKey {
	if s.detector == nil {
		return nil
	}
	hks := s.detector.TopK(n)
	for i := range hks {
		hks[i].Key = cluster.TrimEpoch(hks[i].Key)
	}
	return hks
}

// CacheNodeOps reports each cache node's served-request count, keyed by
// shard-map node name — the per-node load spread the hot-shard figure
// reports. Nil for single-node deployments.
func (s *KVService) CacheNodeOps() map[string]int64 {
	if s.rcServers == nil {
		return nil
	}
	out := make(map[string]int64, len(s.rcServers))
	for n, srv := range s.rcServers {
		out[n] = srv.Ops()
	}
	return out
}

// Node exposes the storage node (experiments tune s_D, inject faults).
func (s *KVService) Node() *storage.Node { return s.node }

// Arch implements Service.
func (s *KVService) Arch() Arch { return s.cfg.Arch }

// PreloadItem is one key to bulk-load before a run.
type PreloadItem struct {
	Key  string
	Size int
}

// Preload bulk-loads rows. In-process deployments load through the
// unmetered bootstrap path; remote deployments load through SQL.
func (s *KVService) Preload(items []PreloadItem) error {
	const chunk = 50
	for start := 0; start < len(items); start += chunk {
		end := start + chunk
		if end > len(items) {
			end = len(items)
		}
		stmt := "INSERT INTO kvdata (k, v) VALUES "
		params := make([]sql.Value, 0, 2*(end-start))
		for i := start; i < end; i++ {
			if i > start {
				stmt += ", "
			}
			stmt += "(?, ?)"
			params = append(params, sql.Text(items[i].Key), sql.Blob(ValueFor(items[i].Key, items[i].Size)))
		}
		if s.node != nil {
			if err := s.node.BootstrapExec(stmt, params...); err != nil {
				return err
			}
			continue
		}
		if _, err := s.db.Exec(stmt, params...); err != nil {
			return err
		}
	}
	return nil
}

// WarmRemoteCache seeds the Remote architecture's cache tier with every
// preload item, as an operator warms a fresh cache fleet before shifting
// traffic onto it. Without it an experiment's metered window starts on
// compulsory misses — storage round trips that measure the miss path,
// not the cache tier under test. Loading goes through each node's bulk
// path (remotecache.Server.Preload): no serving slots, serve work, ops
// tallies or hot-key observations, exactly like storage's unmetered
// bootstrap loads.
func (s *KVService) WarmRemoteCache(items []PreloadItem) error {
	switch {
	case s.smap != nil:
		for _, it := range items {
			v := ValueFor(it.Key, it.Size)
			pl := s.smap.Placement(s.smap.ShardOf(it.Key))
			ek := cluster.EpochKey(pl.Epoch, it.Key)
			for _, n := range pl.Replicas {
				s.rcServers[n].Preload(ek, v)
			}
		}
	case s.rcServer != nil:
		for _, it := range items {
			s.rcServer.Preload(it.Key, ValueFor(it.Key, it.Size))
		}
	default:
		return fmt.Errorf("core: WarmRemoteCache requires an in-process Remote deployment")
	}
	return nil
}

// ValueFor builds the deterministic payload for a key at a given size, so
// reads can be validated end-to-end.
func ValueFor(key string, size int) []byte {
	out := make([]byte, size)
	seed := byte(len(key))
	for _, c := range []byte(key) {
		seed ^= c
	}
	for i := range out {
		out[i] = seed + byte(i)
	}
	return out
}

// loadFromDB is the storage read path shared by all architectures, over
// the lane's private storage connection.
func (s *KVService) loadFromDB(l *kvLane, sc trace.SpanContext, key string) ([]byte, error) {
	rs, err := l.db.QueryCtx(sc, "SELECT v FROM kvdata WHERE k = ?", sql.Text(key))
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("core: no row for key %q", key)
	}
	return rs.Rows[0][0].Blob, nil
}

func (s *KVService) loadVersioned(sc trace.SpanContext, key string) ([]byte, uint64, error) {
	v, err := s.loadFromDB(&s.def, sc, key)
	if err != nil {
		return nil, 0, err
	}
	ver, _, err := s.db.VersionCtx(sc, "kvdata", sql.Text(key))
	if err != nil {
		return nil, 0, err
	}
	return v, ver, nil
}

func (s *KVService) checkVersion(sc trace.SpanContext, key string) (uint64, bool, error) {
	return s.db.VersionCtx(sc, "kvdata", sql.Text(key))
}

// linkedFault consults the fault layer for the in-process cache: an
// injected error models the cache shard being lost or restarting, so the
// read/write skips the cache (a degradation) and goes to storage. The
// decision is drawn from the lane's stream.
func (s *KVService) linkedFault(l *kvLane, sc trace.SpanContext) bool {
	if s.cfg.Faults == nil {
		return false
	}
	if err := s.cfg.Faults.DecideTrace(LinkedCacheNode, l.w, l.attr, sc); err != nil {
		s.degraded.Inc()
		sc.MarkOutcome(trace.FlagDegraded)
		return true
	}
	return false
}

// read runs the architecture dispatch and feeds the access observer,
// when one is installed (the elastic controller's windowed MRC).
func (s *KVService) read(l *kvLane, sc trace.SpanContext, key string) ([]byte, error) {
	v, err := s.readArch(l, sc, key)
	if obs := s.obs; obs != nil && err == nil {
		// Approximate the entry's budgeted footprint the way the cache
		// tiers size entries: key + value + per-entry overhead.
		obs(key, int64(len(key)+len(v)+64))
	}
	return v, err
}

// readArch dispatches a read through the architecture's cache hierarchy
// on lane l.
func (s *KVService) readArch(l *kvLane, sc trace.SpanContext, key string) ([]byte, error) {
	switch s.cfg.Arch {
	case Base:
		return s.loadFromDB(l, sc, key)
	case Remote:
		s.cacheReads.Add(1)
		if v, found, err := l.rc.GetCtx(sc, key); err != nil {
			return nil, err
		} else if found {
			s.cacheHits.Add(1)
			return v, nil
		}
		v, err := s.loadFromDB(l, sc, key)
		if err != nil {
			return nil, err
		}
		if err := l.rc.SetTTLCtx(sc, key, v, 0); err != nil {
			return nil, err
		}
		return v, nil
	case Linked:
		s.cacheReads.Add(1)
		if s.linkedFault(l, sc) {
			return s.loadFromDB(l, sc, key)
		}
		v, hit, err := s.lc.GetOrLoadCtx(sc, key, func(lsc trace.SpanContext) ([]byte, error) {
			return s.loadFromDB(l, lsc, key)
		})
		if err == nil && hit {
			s.cacheHits.Add(1)
		}
		return v, err
	case LinkedVersion:
		v, _, err := s.consistentRead(sc, key, func(csc trace.SpanContext) ([]byte, bool, error) {
			return s.vc.Read(key,
				func(k string) (uint64, bool, error) { return s.checkVersion(csc, k) },
				func(k string) ([]byte, uint64, error) { return s.loadVersioned(csc, k) })
		})
		return v, err
	case LinkedOwned:
		v, _, err := s.consistentRead(sc, key, func(csc trace.SpanContext) ([]byte, bool, error) {
			return s.oc.Read(key, func(k string) ([]byte, uint64, error) { return s.loadVersioned(csc, k) })
		})
		return v, err
	case LinkedTTL:
		v, _, err := s.consistentRead(sc, key, func(csc trace.SpanContext) ([]byte, bool, error) {
			return s.tc.Read(key, func(k string) ([]byte, uint64, error) { return s.loadVersioned(csc, k) })
		})
		return v, err
	default:
		return nil, fmt.Errorf("core: unknown arch %v", s.cfg.Arch)
	}
}

// consistentRead wraps a consistency-cache read in an app.cache span:
// the consistency strategies live outside the traced cache libraries, so
// the service records their lookup spans and linked hit/miss counts
// itself. The strategy's downstream storage calls (version checks and
// loads) carry the span's child context, nesting them under the cache
// span exactly as the §5.5 path model describes.
func (s *KVService) consistentRead(sc trace.SpanContext, key string, read func(csc trace.SpanContext) ([]byte, bool, error)) ([]byte, bool, error) {
	if !sc.Traced() {
		return read(sc)
	}
	act, csc := trace.Start(sc, "app.cache", "read")
	v, hit, err := read(csc)
	if err == nil {
		sc.Tracer().CountLinkedHit(hit)
		act.AnnotateBool("cache.hit", hit)
	}
	act.End()
	return v, hit, err
}

// write dispatches a write on lane l: storage first, then cache
// maintenance.
func (s *KVService) write(l *kvLane, sc trace.SpanContext, key string, value []byte) error {
	storeWrite := func() error {
		_, err := l.db.ExecCtx(sc, "UPDATE kvdata SET v = ? WHERE k = ?", sql.Blob(value), sql.Text(key))
		return err
	}
	switch s.cfg.Arch {
	case Base:
		return storeWrite()
	case Remote:
		if err := storeWrite(); err != nil {
			return err
		}
		// Lookaside invalidation: delete, let the next read repopulate.
		_, err := l.rc.DeleteCtx(sc, key)
		return err
	case Linked:
		if err := storeWrite(); err != nil {
			return err
		}
		if !s.linkedFault(l, sc) {
			s.lc.PutCtx(sc, key, value)
		}
		return nil
	case LinkedVersion:
		if err := storeWrite(); err != nil {
			return err
		}
		s.vc.Invalidate(key)
		return nil
	case LinkedOwned:
		return s.oc.Write(key, value, func() (uint64, error) {
			if err := storeWrite(); err != nil {
				return 0, err
			}
			ver, _, err := s.db.VersionCtx(sc, "kvdata", sql.Text(key))
			return ver, err
		})
	case LinkedTTL:
		if err := storeWrite(); err != nil {
			return err
		}
		s.tc.Write(key, value)
		return nil
	default:
		return fmt.Errorf("core: unknown arch %v", s.cfg.Arch)
	}
}

// Digest is the application logic applied to a value: a real computation
// over the object's header (its first few KB) plus its length, producing
// a small derived result. Requests return the digest, not the raw value —
// as in the paper's services, the client asks the application to *use*
// the object (check a permission, render a view), so the response is
// small and the app touches fields, not every byte. This is also what
// makes remote caches over-read (§2.4): they must ship the WHOLE object
// to the app for it to use a small part.
func Digest(value []byte) []byte {
	return appendDigest(make([]byte, 0, 16), value)
}

// appendDigest appends the 16-byte digest of value to dst. Hot paths pass
// a stack-backed dst to keep the digest off the heap.
func appendDigest(dst, value []byte) []byte {
	head := value
	if len(head) > 4<<10 {
		head = head[:4<<10]
	}
	var h uint64 = 1469598103934665603
	for _, c := range head {
		h = (h ^ uint64(c)) * 1099511628211
	}
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(h>>(8*i)))
	}
	n := uint64(len(value))
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(n>>(8*i)))
	}
	return dst
}

// admit consults the admission gate for one client request. It returns
// the gate outcome and, for Admitted, the release the handler must call
// when its full-path work finishes. Shed and expired outcomes bump their
// counters here.
func (s *KVService) admit(sc trace.SpanContext) (admission.Outcome, func()) {
	if s.gate == nil {
		return admission.Admitted, func() {}
	}
	b := sc.Breakdown()
	var t0 time.Time
	if b != nil {
		t0 = time.Now()
	}
	outcome, release := s.gate.Enter(sc.Deadline())
	if b != nil {
		b.Add(trace.StageAdmission, time.Since(t0))
	}
	switch outcome {
	case admission.ShedQueueFull:
		s.shedCtr.Inc()
		s.telShed.Inc()
		b.Mark(trace.FlagShed)
	case admission.DeadlineExpired:
		s.dlCtr.Inc()
		s.telExpired.Inc()
		b.Mark(trace.FlagDeadline)
	}
	return outcome, release
}

// readShed is the degraded serve for a shed read: answer from the cache
// tier alone — no storage, no admission slot — so overload responses
// stay cheap and bounded. Base has no cache tier and sheds outright;
// Remote consults the remote cache (whose client demotes errors to
// misses, so a dead cache degrades this to an immediate miss); Linked
// reads its in-process cache. Deliberately not counted in
// cacheReads/cacheHits: the hit ratio describes the full-path policy,
// not overload triage.
func (s *KVService) readShed(l *kvLane, sc trace.SpanContext, key string) ([]byte, bool) {
	switch s.cfg.Arch {
	case Remote:
		if l.rc == nil {
			return nil, false
		}
		v, found, err := l.rc.GetCtx(sc, key)
		if err != nil || !found {
			return nil, false
		}
		return v, true
	case Linked:
		if s.lc == nil {
			return nil, false
		}
		return s.lc.GetCtx(sc, key)
	default:
		return nil, false
	}
}

// encodeReadOut encodes the GetResponse shape {1: found, 2: digest}
// field-by-field: the pooled encoder plus a stack-backed digest keeps
// the reply to one buffer copy. The response buffer comes from the
// transport pool; the client side of the front door (frontRead) recycles
// it after decoding.
func encodeReadOut(found bool, v []byte) []byte {
	var dig [16]byte
	e := wire.GetEncoder()
	e.Bool(1, found)
	if found {
		e.BytesField(2, appendDigest(dig[:0], v))
	}
	out := append(rpc.GetBuffer(), e.Bytes()...)
	wire.PutEncoder(e)
	return out
}

// encodeAck encodes the write ack shape {1: ok}.
func encodeAck(ok bool) []byte {
	e := wire.GetEncoder()
	e.Bool(1, ok)
	out := append(rpc.GetBuffer(), e.Bytes()...)
	wire.PutEncoder(e)
	return out
}

// handleRead is the client-facing read: decode, pass the admission gate,
// serve through the cache hierarchy, apply the application logic, reply
// with the small derived result. Application CPU not attributed to a
// downstream component lands on "app"; a worker lane's attribution
// context keeps that split tight under concurrency. A shed request is a
// non-error: it answers found=false (or a cache-only hit) so overload is
// a degraded mode, not a failure storm.
func (s *KVService) handleRead(l *kvLane, sc trace.SpanContext, req []byte) ([]byte, error) {
	var out []byte
	var err error
	b := sc.Breakdown()
	var c0 time.Duration
	if b != nil {
		// Bill the request's busy time on the meter's clock (thread CPU
		// when the driver enables it): the priced quantity the flight
		// recorder reports per exemplar.
		c0 = l.attr.Now()
	}
	meter.AttributeCtx(s.m, l.attr, s.appComp, func() {
		act, asc := trace.Start(sc, "app", "read")
		defer act.End()
		var r remotecache.GetRequest // shape {1: key} — reuse the message
		if err = wire.Unmarshal(req, &r); err != nil {
			return
		}
		outcome, release := s.admit(sc)
		switch outcome {
		case admission.ShedQueueFull:
			act.Annotate("admission", "shed")
			if v, ok := s.readShed(l, asc, r.Key); ok {
				out = encodeReadOut(true, v)
			} else {
				out = encodeReadOut(false, nil)
			}
			return
		case admission.DeadlineExpired:
			act.Annotate("admission", "deadline")
			out = encodeReadOut(false, nil)
			return
		}
		defer release()
		var v []byte
		v, err = s.read(l, asc, r.Key)
		if err != nil {
			return
		}
		act.SetBytes(len(req), len(v))
		out = encodeReadOut(true, v)
	})
	if b != nil {
		b.AddCost(l.attr.Now() - c0)
	}
	return out, err
}

// handleWrite is the client-facing write. A shed or expired write is
// acknowledged ok=false and NOT applied: under overload the service
// refuses mutations rather than applying them outside the SLO.
func (s *KVService) handleWrite(l *kvLane, sc trace.SpanContext, req []byte) ([]byte, error) {
	var out []byte
	var err error
	b := sc.Breakdown()
	var c0 time.Duration
	if b != nil {
		c0 = l.attr.Now()
	}
	meter.AttributeCtx(s.m, l.attr, s.appComp, func() {
		act, asc := trace.Start(sc, "app", "write")
		defer act.End()
		var r remotecache.SetRequest // shape {key, value}
		if err = wire.Unmarshal(req, &r); err != nil {
			return
		}
		outcome, release := s.admit(sc)
		switch outcome {
		case admission.ShedQueueFull:
			act.Annotate("admission", "shed")
			out = encodeAck(false)
			return
		case admission.DeadlineExpired:
			act.Annotate("admission", "deadline")
			out = encodeAck(false)
			return
		}
		defer release()
		if err = s.write(l, asc, r.Key, r.Value); err != nil {
			return
		}
		act.SetBytes(len(req), 0)
		out = encodeAck(true)
	})
	if b != nil {
		b.AddCost(l.attr.Now() - c0)
	}
	return out, err
}

// Read implements Service from the client's side of the front door.
func (s *KVService) Read(key string) ([]byte, error) {
	// The experiment driver plays the client; its own CPU is outside the
	// bill (the paper prices the service, not its callers). The root span
	// opens here too: the trace covers the whole client-visible request.
	sc, act := s.cfg.Tracer.StartRequest("read")
	v, err := frontRead(s.withIntended(sc), s.front, key)
	act.End()
	return v, err
}

// Write implements Service.
func (s *KVService) Write(key string, value []byte) error {
	sc, act := s.cfg.Tracer.StartRequest("write")
	err := frontWrite(s.withIntended(sc), s.front, key, value)
	act.End()
	return err
}

// ReadDeadline implements DeadlineWorker on the default lane.
func (s *KVService) ReadDeadline(key string, deadline time.Time) ([]byte, error) {
	sc, act := s.cfg.Tracer.StartRequest("read")
	v, err := frontRead(s.withIntended(sc).WithDeadline(deadline), s.front, key)
	act.End()
	return v, err
}

// WriteDeadline implements DeadlineWorker on the default lane.
func (s *KVService) WriteDeadline(key string, value []byte, deadline time.Time) error {
	sc, act := s.cfg.Tracer.StartRequest("write")
	err := frontWrite(s.withIntended(sc).WithDeadline(deadline), s.front, key, value)
	act.End()
	return err
}

// SetIntended implements IntendedWorker on the default lane (see
// KVWorker.SetIntended).
func (s *KVService) SetIntended(t time.Time) {
	if t.IsZero() {
		s.intendedNS = 0
		return
	}
	s.intendedNS = t.UnixNano()
}

func (s *KVService) withIntended(sc trace.SpanContext) trace.SpanContext {
	if s.intendedNS != 0 {
		return sc.WithIntendedUnixNano(s.intendedNS)
	}
	return sc
}

// AdmissionStats snapshots the admission gate's conservation counters
// (zero without an AdmissionConfig).
func (s *KVService) AdmissionStats() admission.Stats { return s.gate.Stats() }

// frontRead performs one client read against a front-door server. The
// request is encoded field-by-field from a pooled encoder (GetRequest
// shape {1: key}) and the response buffer cycles back to the transport
// pool: the handler builds its reply from the same pool, and the
// GetResponse decoder copies Value out, so both sides of the round trip
// are reusable.
func frontRead(sc trace.SpanContext, front *rpc.Server, key string) ([]byte, error) {
	e := wire.GetEncoder()
	e.String(1, key)
	respBody, err := front.DispatchCtx(sc, "app.Read", e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return nil, err
	}
	var resp remotecache.GetResponse
	err = wire.Unmarshal(respBody, &resp)
	rpc.PutBuffer(respBody)
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// frontWrite performs one client write against a front-door server,
// encoding the SetRequest shape {1: key, 2: value, 3: ttl_ms}.
func frontWrite(sc trace.SpanContext, front *rpc.Server, key string, value []byte) error {
	e := wire.GetEncoder()
	e.String(1, key)
	e.BytesField(2, value)
	e.Int64(3, 0)
	respBody, err := front.DispatchCtx(sc, "app.Write", e.Bytes())
	wire.PutEncoder(e)
	rpc.PutBuffer(respBody)
	return err
}

// CacheHitRatio reports the architecture's application-level cache hit
// ratio (0 for Base).
func (s *KVService) CacheHitRatio() float64 {
	switch s.cfg.Arch {
	case Remote, Linked:
		// Service-level ratio: counts every read that consulted the
		// cache tier, including ones the fault layer degraded to
		// storage loads (which the caches' internal stats never see).
		reads := s.cacheReads.Load()
		if reads == 0 {
			return 0
		}
		return float64(s.cacheHits.Load()) / float64(reads)
	case LinkedVersion:
		st := s.vc.Stats()
		if st.Reads == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Reads)
	case LinkedOwned:
		st := s.oc.Stats()
		if st.Reads == 0 {
			return 0
		}
		return float64(st.AuthorityHits) / float64(st.Reads)
	case LinkedTTL:
		st := s.tc.Stats()
		if st.Reads == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Reads)
	default:
		return 0
	}
}

// Degraded returns how many cache operations were demoted to misses or
// no-ops so the service could keep serving through cache faults.
func (s *KVService) Degraded() int64 { return s.degraded.Value() }

// RetryStats returns the cache retry layer's counters summed over the
// default lane and every worker lane (zero when no CacheRetry policy was
// configured).
func (s *KVService) RetryStats() rpc.RetryStats {
	var total rpc.RetryStats
	if s.retry != nil {
		total = s.retry.Stats()
	}
	for _, rt := range s.retries {
		st := rt.Stats()
		total.Calls += st.Calls
		total.Attempts += st.Attempts
		total.Retries += st.Retries
		total.BudgetDenied += st.BudgetDenied
		total.DeadlineExceeded += st.DeadlineExceeded
		total.Failures += st.Failures
		total.BackoffTotal += st.BackoffTotal
	}
	for _, l := range s.lanes {
		if l.retry == nil {
			continue
		}
		st := l.retry.Stats()
		total.Calls += st.Calls
		total.Attempts += st.Attempts
		total.Retries += st.Retries
		total.BudgetDenied += st.BudgetDenied
		total.DeadlineExceeded += st.DeadlineExceeded
		total.Failures += st.Failures
		total.BackoffTotal += st.BackoffTotal
	}
	return total
}

// Close implements Service.
func (s *KVService) Close() error { return nil }
