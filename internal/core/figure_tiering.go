package core

import (
	"fmt"
	"time"

	"cachecost/internal/meter"
	"cachecost/internal/workload"
)

// Tiering-figure calibration. The sweep holds workload and prices fixed
// and moves only the storage tier's DRAM:disk split, so these constants
// need to place DRAM rent and disk-read CPU on the same order of
// magnitude — otherwise one extreme trivially wins and the sweep says
// nothing.
const (
	// tieringValueSize is large enough that a disk-tier read moves real
	// bytes (and the meter's per-byte penalty is visible over the fixed
	// per-op costs).
	tieringValueSize = 32 << 10
	// tieringKeys bounds the working set (~19 MB/replica) so the
	// full-DRAM extreme is provisionable while its rent stays within a
	// few x of the all-disk extreme's read CPU.
	tieringKeys = 600
	// tieringMemMultiplier prices DRAM at the paper's §4 elevated
	// memory-price scenario (up to 40x list): tiering is exactly the
	// response the paper prescribes when memory is the scarce resource.
	tieringMemMultiplier = 40
	// tieringDiskPerOp and tieringDiskPerByte model a datacenter-SSD
	// read including its share of the storage server's I/O stack:
	// ~360 us per access plus ~16 burner units per byte moved (~1.1 ms
	// for a 32 KB value at ~1.4 ns/unit). Deliberately on the expensive
	// side — calibrated so a full-DRAM tier's rent and a full-disk
	// tier's read CPU land within ~1x of each other, which is where the
	// split sweep has a pronounced interior dip that stands far above
	// run-to-run measurement noise.
	tieringDiskPerOp   = 262144
	tieringDiskPerByte = 16.0
	// tieringLoad drives every split at this fraction of the all-disk
	// configuration's closed-loop capacity, so the one schedule is
	// feasible (shed-free) for every cell and cost is compared at equal,
	// met SLO.
	tieringLoad = 0.4
)

// tieringSplits is the DRAM share sweep, in percent of the working set:
// 0 is the all-disk extreme, 100 the all-DRAM extreme.
var tieringSplits = []int{0, 10, 25, 50, 100}

// FigTiering sweeps the durable storage engine's DRAM:disk split under
// a diurnal open-loop workload. Every cell stores the full working set
// durably (WAL + SSTables); the split sets how much of it is also
// DRAM-resident. The bill moves in opposite directions: more DRAM means
// more rent (at §4's elevated memory price), less DRAM means more
// miss-driven disk-read CPU. For the cache-less architecture the sweep
// has an interior optimum — a middle split beats both extremes — while
// for Linked the app-side cache has already absorbed the hot keys and
// the marginal value of storage DRAM collapses: push it toward disk.
// That is the paper's allocation argument (§3-§4) extended down one
// tier: provision distributed caches, spill the cold tail to disk.
func FigTiering(o FigOptions) (*Table, error) {
	o.applyDefaults()
	t := &Table{
		ID:    "tiering",
		Title: "Durable storage: cost vs DRAM:disk split (diurnal open loop, 40x memory price)",
		Header: []string{"arch", "dram_share", "$/Mreq", "p99_intended_ms", "mem_$/mo", "disk_$/mo",
			"disk_reads", "tier_demotions", "server_shed", "deadline_exp"},
	}
	cfg := workload.SyntheticConfig{
		Keys: tieringKeys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: tieringValueSize, Seed: o.Seed,
	}
	prices := o.Prices.WithMemoryMultiplier(tieringMemMultiplier)
	ws := int64(cfg.Keys) * int64(cfg.ValueSize)

	for _, arch := range []Arch{Base, Linked} {
		// Probe the slowest configuration (all-disk) closed-loop; its
		// sustainable rate bounds every other split's too.
		probe, _, err := o.tieringCell(arch, cfg, 0, ws, prices, nil, 0)
		if err != nil {
			return nil, err
		}
		if probe.Throughput <= 0 {
			return nil, fmt.Errorf("core: tiering capacity probe for %s measured no throughput", arch)
		}
		// Latency is not this figure's axis: the SLO exists so every op
		// still traverses its full path at the diurnal peak (a shed or
		// expired op would be answered cheaply and distort the cost
		// comparison). A generous floor keeps the single service lane
		// ahead of peak queueing on every split.
		slo := o.SLO
		if slo <= 0 {
			slo = 10 * probe.LatencyP99
			if slo < 250*time.Millisecond {
				slo = 250 * time.Millisecond
			}
		}
		arrival := workload.ArrivalConfig{
			Process: workload.ArrivalDiurnal,
			Rate:    tieringLoad * probe.Throughput,
			Seed:    o.Seed,
		}
		var best, allDisk, allDRAM float64
		bestSplit := -1
		for _, split := range tieringSplits {
			res, st, err := o.tieringCell(arch, cfg, split, ws, prices, &arrival, slo)
			if err != nil {
				return nil, err
			}
			t.AddRow(arch.String(), fmt.Sprintf("%d%%", split), res.CostPerMReq,
				float64(res.LatencyP99)/1e6, res.Report.MemCost, res.Report.DiskCost,
				st.DiskReads, st.TierDemotions, res.ServerShed, res.DeadlineExceeded)
			o.emit(fmt.Sprintf("tiering/%s/dram=%d%%", arch, split), res)
			switch split {
			case 0:
				allDisk = res.CostPerMReq
			case 100:
				allDRAM = res.CostPerMReq
			}
			if bestSplit < 0 || res.CostPerMReq < best {
				best, bestSplit = res.CostPerMReq, split
			}
		}
		if bestSplit > 0 && bestSplit < 100 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: %d%% DRAM wins — %.3gx cheaper than all-DRAM, %.3gx cheaper than all-disk, same met SLO",
				arch, bestSplit, allDRAM/best, allDisk/best))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"%s: extreme %d%% DRAM is optimal at this calibration", arch, bestSplit))
		}
	}
	t.Notes = append(t.Notes,
		"every cell stores the full working set durably; dram_share moves only the DRAM-resident value tier",
		"memory priced at 40x list (the paper's §4 high-price scenario); disk residency at the storage rate plus modeled read CPU per miss",
		"one arrival schedule per architecture (0.4x the all-disk capacity, diurnal), so splits are compared at equal, met SLO")
	return t, nil
}

// tieringCell runs one (arch, dram-split) cell on a fresh durable
// deployment and returns both the run result and the storage engine's
// tier counters. A nil arrival runs closed-loop (the capacity probe).
func (o FigOptions) tieringCell(arch Arch, cfg workload.SyntheticConfig, dramPct int, ws int64,
	prices meter.PriceBook, arrival *workload.ArrivalConfig, slo time.Duration) (*RunResult, kvStats, error) {

	m := meter.NewMeter()
	o.cellMeter(m)
	gen := workload.NewSynthetic(cfg)
	dram := ws * int64(dramPct) / 100
	if dram < 1 {
		dram = 1 // 0 would select the page-mode default block cache
	}
	svcCfg := ServiceConfig{
		Arch:               arch,
		Meter:              m,
		StorageDurable:     true,
		StorageCacheBytes:  dram,
		AppCacheBytes:      ws * 60 / 100,
		RemoteCacheBytes:   ws * 60 / 100,
		AppReplicas:        o.AppReplicas,
		DiskPenaltyPerOp:   tieringDiskPerOp,
		DiskPenaltyPerByte: tieringDiskPerByte,
		Tracer:             o.Tracer,
		Telemetry:          o.Telemetry,
	}
	if arrival != nil {
		svcCfg.Admission = &AdmissionConfig{MaxInflight: 1, QueueDepth: 4}
	}
	svc, err := BuildKVService(svcCfg, gen)
	if err != nil {
		return nil, kvStats{}, err
	}
	rc := RunConfig{
		Warmup: o.Warmup, Ops: o.Ops, Prices: prices, Tracer: o.Tracer, Telemetry: o.Telemetry,
	}
	if arrival != nil {
		rc.Arrival = arrival
		rc.SLO = slo
	}
	res, err := RunExperimentCfg(svc, m, gen, rc)
	if err != nil {
		return nil, kvStats{}, err
	}
	var st kvStats
	if db := svc.node.LeaderDB(); db != nil {
		s := db.Store().Stats()
		st = kvStats{DiskReads: s.DiskReads, TierDemotions: s.TierDemotions}
	}
	return res, st, nil
}

// kvStats is the slice of kv.Stats the tiering table reports.
type kvStats struct {
	DiskReads     int64
	TierDemotions int64
}
