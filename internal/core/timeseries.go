package core

import (
	"fmt"

	"cachecost/internal/fault"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/workload"
)

// deltaCounter sums a windowed snapshot's counters matching name, and —
// when labelVal is non-empty — carrying a label with that value.
func deltaCounter(s telemetry.Snapshot, name, labelVal string) float64 {
	var v float64
	for _, c := range s.Counters {
		if c.Name != name {
			continue
		}
		if labelVal == "" {
			v += c.Value
			continue
		}
		for _, l := range c.Labels {
			if l.Value == labelVal {
				v += c.Value
				break
			}
		}
	}
	return v
}

// deltaHist returns a windowed snapshot's histogram state for name.
func deltaHist(s telemetry.Snapshot, name string) (telemetry.HistState, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return telemetry.HistState{}, false
}

// FigTimeseries is the continuous-telemetry scenario: one Remote-arch
// deployment driven through warm-up, steady state, a cache-node kill and
// its slow-start recovery, with the telemetry registry snapshotted at
// window edges along the way. Each row is one window's delta — the
// windowed percentiles come from differencing retained histogram
// buckets, the same mechanism the JSONL snapshot recorder uses. The
// expected shape: cold-cache warm-up latency settles, the kill window
// shows the hit ratio collapse and degradations spike while p99 absorbs
// storage round trips, and recovery restores steady state.
func FigTimeseries(o FigOptions) (*Table, error) {
	o.applyDefaults()
	reg := o.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry() // standalone: the figure still works unscraped
	}

	wcfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: 1 << 10, Seed: o.Seed}
	m := meter.NewMeter()
	telemetry.RegisterMeter(reg, "meter", m)
	inj := fault.New(o.Seed, fault.Options{Meter: m})
	inj.SetRule(CacheNode, fault.Rule{SlowStartCalls: 50})
	gen := workload.NewSynthetic(wcfg)
	ws := int64(wcfg.Keys) * int64(wcfg.ValueSize)
	svc, err := BuildKVService(ServiceConfig{
		Arch:              Remote,
		Meter:             m,
		StorageCacheBytes: ws * 15 / 100,
		RemoteCacheBytes:  ws * 60 / 100,
		AppReplicas:       o.AppReplicas,
		Faults:            inj,
		CacheRetry:        &rpc.RetryPolicy{},
		RetrySeed:         o.Seed,
		Tracer:            o.Tracer,
		Telemetry:         reg,
	}, gen)
	if err != nil {
		return nil, err
	}

	killAt := o.Warmup + o.Ops*2/5
	reviveAt := o.Warmup + o.Ops*3/5
	sched := fault.NewSchedule([]fault.Event{
		{AtOp: killAt, Node: CacheNode, Action: fault.ActKill},
		{AtOp: reviveAt, Node: CacheNode, Action: fault.ActRevive},
	})

	// Window edges in driven-op numbers: the warm-up halves, then the
	// metered window in eighths. The registry's flows reset when the
	// metered window begins (op Warmup), so the last warm-up edge sits
	// one op before it to capture pre-reset state; DeltaSince clamps the
	// window that spans the reset.
	edges := []int{o.Warmup / 2, o.Warmup - 1}
	for i := 1; i < 8; i++ {
		edges = append(edges, o.Warmup+o.Ops*i/8)
	}
	type window struct {
		endOp int
		snap  telemetry.Snapshot
	}
	var wins []window
	next := 0
	res, err := RunExperimentCfg(svc, m, gen, RunConfig{
		Warmup:    o.Warmup,
		Ops:       o.Ops,
		Prices:    o.Prices,
		Tracer:    o.Tracer,
		Telemetry: reg,
		OnOp: func(n int) {
			sched.Step(inj)
			for next < len(edges) && n >= edges[next] {
				wins = append(wins, window{endOp: n, snap: reg.Snapshot()})
				next++
			}
		},
	})
	if err != nil {
		return nil, err
	}
	wins = append(wins, window{endOp: o.Warmup + o.Ops, snap: reg.Snapshot()})
	o.emit("timeseries/Remote", res)

	t := &Table{
		ID:     "timeseries",
		Title:  "Continuous telemetry: windowed latency and hit ratio through warm-up and a cache-node kill (Remote)",
		Header: []string{"window", "end_op", "phase", "ops", "req_p50_us", "req_p99_us", "hit_ratio", "degraded", "retries"},
	}
	var prev telemetry.Snapshot
	prevOp := 0
	for i, w := range wins {
		d := w.snap.DeltaSince(prev)
		phase := "steady"
		switch {
		case w.endOp <= o.Warmup:
			phase = "warmup"
		case prevOp >= reviveAt:
			phase = "recovered"
		case w.endOp > killAt:
			phase = "killed"
		}
		var ops int64
		var p50, p99 float64
		if hs, ok := deltaHist(d, "request.latency"); ok && hs.Count > 0 {
			sum := hs.Summary()
			ops, p50, p99 = sum.Count, float64(sum.P50)/1e3, float64(sum.P99)/1e3
		}
		hits := deltaCounter(d, "cache.client.hits", "")
		misses := deltaCounter(d, "cache.client.misses", "")
		hitRatio := 0.0
		if hits+misses > 0 {
			hitRatio = hits / (hits + misses)
		}
		t.AddRow(i+1, w.endOp, phase, ops, p50, p99, hitRatio,
			deltaCounter(d, "cache.client.degraded", ""),
			deltaCounter(d, "meter.counter", RetriesCounter))
		prev, prevOp = w.snap, w.endOp
	}
	t.Notes = append(t.Notes,
		"each row differences retained histogram buckets between registry snapshots — the recorder's JSONL windows use the same mechanism",
		"the kill window drops hit_ratio to ~0 and spikes degradations while p99 absorbs storage round trips; slow-start recovery follows",
		fmt.Sprintf("cache node killed at op %d, revived at op %d (ops count warmup; the metered window starts at %d)", killAt, reviveAt, o.Warmup))
	return t, nil
}
