package core

import (
	"fmt"
	"testing"
	"time"

	"cachecost/internal/fault"
	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/trace"
	"cachecost/internal/workload"
)

// allExemplars flattens every retained class of a snapshot.
func allExemplars(ex flight.ExemplarSet) []flight.Exemplar {
	var out []flight.Exemplar
	out = append(out, ex.Slowest...)
	out = append(out, ex.Shed...)
	out = append(out, ex.Deadline...)
	out = append(out, ex.Degraded...)
	out = append(out, ex.Error...)
	return out
}

// TestFlightConservationUnderLoad drives an overloaded open-loop window
// with the flight recorder armed, at P1 and P4, and pins the stage
// attribution's conservation contract: for every captured exemplar the
// stage durations (StageRaft excluded — it is inside StageStorage)
// account for at least 90% of the request's intended-clock latency. At
// P4 the shallow admission gate under 3x offered load must also surface
// shed exemplars.
func TestFlightConservationUnderLoad(t *testing.T) {
	const warmup, ops = 200, 2000
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("P%d", par), func(t *testing.T) {
			// Probe closed-loop capacity so the open-loop window is
			// reliably past saturation on any machine.
			m := meter.NewMeter()
			gen := smallGen(11)
			cfg := smallCfg(Remote, m)
			cfg.Parallelism = par
			svc, err := BuildKVService(cfg, gen)
			if err != nil {
				t.Fatal(err)
			}
			probe, err := RunExperimentCfg(svc, m, gen, RunConfig{
				Warmup: warmup, Ops: 500, Parallelism: par, Prices: meter.GCP,
			})
			if err != nil {
				t.Fatal(err)
			}

			rec := flight.New(flight.Config{SlowestK: 32})
			m2 := meter.NewMeter()
			cfg2 := smallCfg(Remote, m2)
			cfg2.Parallelism = par
			cfg2.Flight = rec
			// One slot and one queue position: with par lanes feeding the
			// gate concurrently, par > 2 guarantees queue-full sheds.
			cfg2.Admission = &AdmissionConfig{MaxInflight: 1, QueueDepth: 1}
			if par > 1 {
				// A wall-clock stall on storage round trips makes the
				// admitted request hold the gate slot in real time, so the
				// other lanes pile onto the gate even on a single-core
				// machine — the shed assertion below must not depend on
				// preemption luck.
				inj := fault.New(7, fault.Options{Meter: m2})
				inj.SetRule(StorageFaultNode, fault.Rule{StallSleep: time.Millisecond, StallRate: 1})
				cfg2.Faults = inj
			}
			svc2, err := BuildKVService(cfg2, gen)
			if err != nil {
				t.Fatal(err)
			}
			rec.Reset()
			if _, err := RunExperimentCfg(svc2, m2, gen, RunConfig{
				Warmup: warmup, Ops: ops, Parallelism: par, Prices: meter.GCP,
				SLO: 20 * time.Millisecond,
				Arrival: &workload.ArrivalConfig{
					Process: workload.ArrivalPoisson,
					Rate:    3 * probe.Throughput,
					Seed:    11,
				},
			}); err != nil {
				t.Fatal(err)
			}

			ex := rec.Exemplars()
			if len(ex.Slowest) == 0 {
				t.Fatal("overloaded window retained no slowest exemplars")
			}
			for _, e := range allExemplars(ex) {
				if e.Dur <= 0 {
					t.Fatalf("exemplar %s has non-positive Dur %d", e.Method, e.Dur)
				}
				ratio := float64(e.SumStages()) / float64(e.Dur)
				if ratio < 0.9 || ratio > 1.1 {
					t.Errorf("conservation violated: %s outcome=%s stages sum to %.0f%% of Dur=%v (stages %v)",
						e.Method, e.Outcome(), 100*ratio, time.Duration(e.Dur), e.Stages)
				}
			}
			if par > 1 && len(ex.Shed) == 0 {
				t.Error("3x overload through a shallow admission gate surfaced no shed exemplars")
			}
		})
	}
}

// populate writes every key of the small synthetic population so
// subsequent reads never miss storage entirely.
func populate(t *testing.T, svc *KVService) {
	t.Helper()
	for i := 0; i < 300; i++ {
		key := workload.KeyName(i)
		if err := svc.Write(key, ValueFor(key, 2048)); err != nil {
			t.Fatal(err)
		}
	}
}

// dominantShare counts how many exemplars name stage s dominant.
func dominantShare(exs []flight.Exemplar, s trace.Stage) (dominant, total int) {
	for i := range exs {
		if exs[i].DominantStage() == s {
			dominant++
		}
	}
	return dominant, len(exs)
}

// TestFlightStorageStallDominant injects a pure wall-clock stall on the
// app→storage connection and pins the acceptance contract: the blown
// deadlines this causes are captured as deadline exemplars whose
// dominant stage is storage — the injected fault is visible in the
// breakdown, not just in the aggregate tail.
func TestFlightStorageStallDominant(t *testing.T) {
	rec := flight.New(flight.Config{SlowestK: 16})
	m := meter.NewMeter()
	gen := smallGen(5)
	inj := fault.New(5, fault.Options{Meter: m})
	cfg := smallCfg(Base, m) // no cache tier: every read round-trips storage
	cfg.Faults = inj
	cfg.Flight = rec
	svc, err := BuildKVService(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, svc)

	rec.Reset()
	inj.SetRule(StorageFaultNode, fault.Rule{StallSleep: 3 * time.Millisecond, StallRate: 1})
	for i := 0; i < 40; i++ {
		op := gen.Next()
		// A 1ms budget the 3ms storage stall always blows; the deadline
		// is only knowable at completion.
		if _, err := svc.ReadDeadline(op.Key, time.Now().Add(time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}

	ex := rec.Exemplars()
	if len(ex.Deadline) == 0 {
		t.Fatal("stalled storage blew no deadlines into the deadline exemplar class")
	}
	if dom, total := dominantShare(ex.Deadline, trace.StageStorage); dom*10 < total*9 {
		t.Errorf("storage dominant in %d/%d deadline exemplars, want >=90%%", dom, total)
	}
	if dom, total := dominantShare(ex.Slowest, trace.StageStorage); dom*10 < total*9 {
		t.Errorf("storage dominant in %d/%d slowest exemplars, want >=90%%", dom, total)
	}
}

// TestFlightCacheStallDominant: the same contract for the cache tier —
// a stalled remote cache makes StageCache dominant in the slowest
// exemplars of a Remote-architecture service.
func TestFlightCacheStallDominant(t *testing.T) {
	rec := flight.New(flight.Config{SlowestK: 16})
	m := meter.NewMeter()
	gen := smallGen(6)
	inj := fault.New(6, fault.Options{Meter: m})
	cfg := smallCfg(Remote, m)
	cfg.Faults = inj
	cfg.Flight = rec
	svc, err := BuildKVService(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, svc)
	// Warm the cache tier so reads are mostly hits (one stalled get)
	// rather than misses (stalled get + storage + stalled set) — either
	// way cache wall time dominates, but warmth keeps the test fast.
	for i := 0; i < 200; i++ {
		op := gen.Next()
		if op.Kind == workload.Read {
			if _, err := svc.Read(op.Key); err != nil {
				t.Fatal(err)
			}
		}
	}

	rec.Reset()
	inj.SetRule(CacheNode, fault.Rule{StallSleep: 3 * time.Millisecond, StallRate: 1})
	for i := 0; i < 40; i++ {
		op := gen.Next()
		if _, err := svc.Read(op.Key); err != nil {
			t.Fatal(err)
		}
	}

	ex := rec.Exemplars()
	if len(ex.Slowest) == 0 {
		t.Fatal("stalled cache retained no slowest exemplars")
	}
	if dom, total := dominantShare(ex.Slowest, trace.StageCache); dom*10 < total*9 {
		t.Errorf("cache dominant in %d/%d slowest exemplars, want >=90%%", dom, total)
	}
}
