package core

import (
	"fmt"

	"cachecost/internal/meter"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/storage/sql"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// Multi-key client operations. A batch of B point reads is ONE
// client-visible request: one front-door frame, one root span, one
// fan-out through the architecture's cache hierarchy — so every
// per-message overhead the paper's cost model charges (RPC framing,
// (de)serialization, the SQL front-end) is paid once per batch instead
// of once per key. The per-key work (cache lookups, executor rows,
// digests) still scales with B; that split is exactly what the batch
// figure measures.
//
// Semantics are positional throughout: response slot i answers request
// key i. Under fault injection the Remote path inherits the cache
// client's partial-result behaviour — a dead cache node demotes its
// keys to misses (one degradation per failed node RPC) and the batch
// falls through to one batched storage read, so no op is dropped.

// BatchServiceWorker is a worker surface that can carry multi-key
// operations. ReadBatch returns one digest per key, positionally;
// WriteBatch applies keys[i] = values[i] for every i.
type BatchServiceWorker interface {
	ServiceWorker
	ReadBatch(keys []string) ([][]byte, error)
	WriteBatch(keys []string, values [][]byte) error
}

// loadBatchFromDB is the batched storage read shared by all
// architectures: one sql.BatchQuery RPC binds the point-read template
// once per key, so storage parses, burns its front-end and validates
// its lease once for the whole batch.
func (s *KVService) loadBatchFromDB(l *kvLane, sc trace.SpanContext, keys []string) ([][]byte, error) {
	params := make([]sql.Value, len(keys))
	for i, k := range keys {
		params[i] = sql.Text(k)
	}
	results, err := l.db.BatchQueryCtx(sc, "SELECT v FROM kvdata WHERE k = ?", params)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(keys))
	for i, rs := range results {
		if len(rs.Rows) == 0 {
			return nil, fmt.Errorf("core: no row for key %q", keys[i])
		}
		out[i] = rs.Rows[0][0].Blob
	}
	return out, nil
}

// readBatch serves a multi-key read through the architecture's cache
// hierarchy on lane l, returning raw values positionally.
func (s *KVService) readBatch(l *kvLane, sc trace.SpanContext, keys []string) ([][]byte, error) {
	switch s.cfg.Arch {
	case Base:
		return s.loadBatchFromDB(l, sc, keys)
	case Remote:
		s.cacheReads.Add(int64(len(keys)))
		values, found, err := l.rc.MultiGetCtx(sc, keys)
		if err != nil {
			return nil, err
		}
		var missKeys []string
		var missIdx []int
		for i, f := range found {
			if f {
				s.cacheHits.Add(1)
				continue
			}
			missKeys = append(missKeys, keys[i])
			missIdx = append(missIdx, i)
		}
		if len(missKeys) == 0 {
			return values, nil
		}
		loaded, err := s.loadBatchFromDB(l, sc, missKeys)
		if err != nil {
			return nil, err
		}
		for j, i := range missIdx {
			values[i] = loaded[j]
		}
		// Backfill the cache with one batched set; a dead node degrades
		// this to a no-op, same as the scalar path.
		if err := l.rc.MultiSetTTLCtx(sc, missKeys, loaded, 0); err != nil {
			return nil, err
		}
		return values, nil
	case Linked:
		s.cacheReads.Add(int64(len(keys)))
		// One fault decision per batch: the in-process cache shard is
		// either up or down for the whole request.
		if s.linkedFault(l, sc) {
			return s.loadBatchFromDB(l, sc, keys)
		}
		values := make([][]byte, len(keys))
		var missKeys []string
		var missIdx []int
		for i, k := range keys {
			if v, ok := s.lc.GetCtx(sc, k); ok {
				values[i] = v
				s.cacheHits.Add(1)
				continue
			}
			missKeys = append(missKeys, k)
			missIdx = append(missIdx, i)
		}
		if len(missKeys) == 0 {
			return values, nil
		}
		loaded, err := s.loadBatchFromDB(l, sc, missKeys)
		if err != nil {
			return nil, err
		}
		for j, i := range missIdx {
			values[i] = loaded[j]
			s.lc.PutCtx(sc, missKeys[j], loaded[j])
		}
		return values, nil
	default:
		// Consistency architectures keep their per-key read protocols
		// (version checks and leases are per-key by design); the batch
		// still saves the per-op front-door frames.
		values := make([][]byte, len(keys))
		for i, k := range keys {
			v, err := s.read(l, sc, k)
			if err != nil {
				return nil, err
			}
			values[i] = v
		}
		return values, nil
	}
}

// writeBatch applies a multi-key write on lane l. Storage writes stay
// per-statement (each update replicates through raft on its own), but
// the Remote architecture batches its lookaside invalidations into one
// MultiDelete frame.
func (s *KVService) writeBatch(l *kvLane, sc trace.SpanContext, keys []string, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("core: WriteBatch %d keys but %d values", len(keys), len(values))
	}
	if s.cfg.Arch != Remote {
		for i := range keys {
			if err := s.write(l, sc, keys[i], values[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for i := range keys {
		if _, err := l.db.ExecCtx(sc, "UPDATE kvdata SET v = ? WHERE k = ?",
			sql.Blob(values[i]), sql.Text(keys[i])); err != nil {
			return err
		}
	}
	return l.rc.MultiDeleteCtx(sc, keys)
}

// handleReadBatch is the client-facing multi-key read: one request
// frame in (MultiGetRequest shape {1: key...}), one reply frame out
// carrying a packed found bitmap and one 16-byte digest per key.
func (s *KVService) handleReadBatch(l *kvLane, sc trace.SpanContext, req []byte) ([]byte, error) {
	var out []byte
	var err error
	meter.AttributeCtx(s.m, l.attr, s.appComp, func() {
		act, asc := trace.Start(sc, "app", "read")
		defer act.End()
		var r remotecache.MultiGetRequest
		if err = wire.Unmarshal(req, &r); err != nil {
			return
		}
		act.AnnotateInt("batch.keys", int64(len(r.Keys)))
		var values [][]byte
		values, err = s.readBatch(l, asc, r.Keys)
		if err != nil {
			return
		}
		var total int
		found := make([]bool, len(values))
		var dig [16]byte
		e := wire.GetEncoder()
		for i, v := range values {
			total += len(v)
			found[i] = true
			e.BytesField(2, appendDigest(dig[:0], v))
		}
		e.PackedBools(1, found)
		act.SetBytes(len(req), total)
		out = append(rpc.GetBuffer(), e.Bytes()...)
		wire.PutEncoder(e)
	})
	return out, err
}

// handleWriteBatch is the client-facing multi-key write (MultiSetRequest
// shape in, Ack shape out).
func (s *KVService) handleWriteBatch(l *kvLane, sc trace.SpanContext, req []byte) ([]byte, error) {
	var out []byte
	var err error
	meter.AttributeCtx(s.m, l.attr, s.appComp, func() {
		act, asc := trace.Start(sc, "app", "write")
		defer act.End()
		var r remotecache.MultiSetRequest
		if err = wire.Unmarshal(req, &r); err != nil {
			return
		}
		act.AnnotateInt("batch.keys", int64(len(r.Keys)))
		if err = s.writeBatch(l, asc, r.Keys, r.Values); err != nil {
			return
		}
		act.SetBytes(len(req), 0)
		e := wire.GetEncoder()
		e.Bool(1, true)
		out = append(rpc.GetBuffer(), e.Bytes()...)
		wire.PutEncoder(e)
	})
	return out, err
}

// frontReadBatch performs one client multi-key read against a front
// door: one encoded frame, one dispatch, one decoded reply.
func frontReadBatch(sc trace.SpanContext, front *rpc.Server, keys []string) ([][]byte, error) {
	e := wire.GetEncoder()
	e.StringSlice(1, keys)
	respBody, err := front.DispatchCtx(sc, "app.ReadBatch", e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return nil, err
	}
	var resp remotecache.MultiGetResponse
	err = wire.Unmarshal(respBody, &resp)
	rpc.PutBuffer(respBody)
	if err != nil {
		return nil, err
	}
	if len(resp.Values) != len(keys) {
		return nil, fmt.Errorf("core: ReadBatch returned %d digests for %d keys", len(resp.Values), len(keys))
	}
	return resp.Values, nil
}

// frontWriteBatch performs one client multi-key write against a front
// door (MultiSetRequest shape {1: key..., 2: value..., 3: ttl_ms}).
func frontWriteBatch(sc trace.SpanContext, front *rpc.Server, keys []string, values [][]byte) error {
	e := wire.GetEncoder()
	e.StringSlice(1, keys)
	e.BytesSlice(2, values)
	e.Int64(3, 0)
	respBody, err := front.DispatchCtx(sc, "app.WriteBatch", e.Bytes())
	wire.PutEncoder(e)
	rpc.PutBuffer(respBody)
	return err
}

// ReadBatch drives one multi-key client read: one root span, one front
// door round trip, one digest per key.
func (s *KVService) ReadBatch(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	sc, act := s.cfg.Tracer.StartRequest("read")
	vs, err := frontReadBatch(sc, s.front, keys)
	act.End()
	return vs, err
}

// WriteBatch drives one multi-key client write.
func (s *KVService) WriteBatch(keys []string, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	sc, act := s.cfg.Tracer.StartRequest("write")
	err := frontWriteBatch(sc, s.front, keys, values)
	act.End()
	return err
}

// ReadBatch drives a multi-key read through the worker's lane.
func (w *KVWorker) ReadBatch(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	sc, act := w.s.cfg.Tracer.StartRequest("read")
	vs, err := frontReadBatch(sc, w.l.front, keys)
	act.End()
	return vs, err
}

// WriteBatch drives a multi-key write through the worker's lane.
func (w *KVWorker) WriteBatch(keys []string, values [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	sc, act := w.s.cfg.Tracer.StartRequest("write")
	err := frontWriteBatch(sc, w.l.front, keys, values)
	act.End()
	return err
}
