package remotecache

import (
	"errors"
	"fmt"
	"time"

	"cachecost/internal/cluster"
	"cachecost/internal/rpc"
	"cachecost/internal/wire"
)

// ErrNoNodes is returned by a client with no cache nodes.
var ErrNoNodes = errors.New("remotecache: no cache nodes")

// Client shards keys across one or more cache nodes with consistent
// hashing, the standard memcached client topology. It is safe for
// concurrent use once constructed.
type Client struct {
	ring  *cluster.Ring
	conns map[string]rpc.Conn
}

// NewClient builds a client over named connections (node name -> conn).
func NewClient(conns map[string]rpc.Conn) *Client {
	c := &Client{ring: cluster.NewRing(64), conns: make(map[string]rpc.Conn, len(conns))}
	for name, conn := range conns {
		c.ring.Add(name)
		c.conns[name] = conn
	}
	return c
}

// NewSingleClient is the common one-node case.
func NewSingleClient(conn rpc.Conn) *Client {
	return NewClient(map[string]rpc.Conn{"cache0": conn})
}

func (c *Client) conn(key string) (rpc.Conn, error) {
	node := c.ring.Owner(key)
	if node == "" {
		return nil, ErrNoNodes
	}
	conn, ok := c.conns[node]
	if !ok {
		return nil, fmt.Errorf("remotecache: no connection for node %q", node)
	}
	return conn, nil
}

// Get fetches key, reporting presence.
func (c *Client) Get(key string) ([]byte, bool, error) {
	conn, err := c.conn(key)
	if err != nil {
		return nil, false, err
	}
	respBody, err := conn.Call("cache.Get", wire.Marshal(&GetRequest{Key: key}))
	if err != nil {
		return nil, false, err
	}
	var resp GetResponse
	if err := wire.Unmarshal(respBody, &resp); err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	return resp.Value, true, nil
}

// Set stores key with no TTL.
func (c *Client) Set(key string, value []byte) error {
	return c.SetTTL(key, value, 0)
}

// SetTTL stores key, expiring after ttl (0 = never).
func (c *Client) SetTTL(key string, value []byte, ttl time.Duration) error {
	conn, err := c.conn(key)
	if err != nil {
		return err
	}
	req := &SetRequest{Key: key, Value: value, TTLms: int64(ttl / time.Millisecond)}
	respBody, err := conn.Call("cache.Set", wire.Marshal(req))
	if err != nil {
		return err
	}
	var ack Ack
	return wire.Unmarshal(respBody, &ack)
}

// Delete removes key, reporting whether it existed.
func (c *Client) Delete(key string) (bool, error) {
	conn, err := c.conn(key)
	if err != nil {
		return false, err
	}
	respBody, err := conn.Call("cache.Delete", wire.Marshal(&DeleteRequest{Key: key}))
	if err != nil {
		return false, err
	}
	var ack Ack
	if err := wire.Unmarshal(respBody, &ack); err != nil {
		return false, err
	}
	return ack.OK, nil
}

// Close closes every connection, returning the first error.
func (c *Client) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
