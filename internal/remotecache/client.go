package remotecache

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cachecost/internal/cluster"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// ErrNoNodes is returned by a client with no cache nodes.
var ErrNoNodes = errors.New("remotecache: no cache nodes")

// Client shards keys across one or more cache nodes with consistent
// hashing, the standard memcached client topology. It is safe for
// concurrent use once constructed.
//
// A client is strict by default: cache errors propagate to the caller.
// Production lookaside clients instead degrade gracefully — the cache is
// an optimization, not a dependency — so Degrade switches the client to
// demote every cache failure to a miss (Get) or a no-op (Set/Delete),
// counting each demotion. The paper's availability argument (§5) assumes
// exactly this behaviour: the service must keep serving through cache
// loss, and the degraded window's cost shows up as extra storage load.
type Client struct {
	ring  *cluster.Ring
	conns map[string]rpc.Conn

	degrade  atomic.Bool
	degraded atomic.Int64   // cache errors demoted so far
	counter  *meter.Counter // optional mirror into a meter's counters

	// Client-observed outcome counters; nil (no-op) until SetTelemetry.
	tmHits     *telemetry.Counter
	tmMisses   *telemetry.Counter
	tmDegraded *telemetry.Counter

	// router, when set (NewRoutedClient), replaces ring routing with
	// shard-map routing: replica fan-out, P2C reads, handoff double-reads.
	router *router
}

// NewClient builds a client over named connections (node name -> conn).
func NewClient(conns map[string]rpc.Conn) *Client {
	c := &Client{ring: cluster.NewRing(64), conns: make(map[string]rpc.Conn, len(conns))}
	for name, conn := range conns {
		c.ring.Add(name)
		c.conns[name] = conn
	}
	return c
}

// NewSingleClient is the common one-node case.
func NewSingleClient(conn rpc.Conn) *Client {
	return NewClient(map[string]rpc.Conn{"cache0": conn})
}

func (c *Client) conn(key string) (rpc.Conn, error) {
	node := c.ring.Owner(key)
	if node == "" {
		return nil, ErrNoNodes
	}
	conn, ok := c.conns[node]
	if !ok {
		return nil, fmt.Errorf("remotecache: no connection for node %q", node)
	}
	return conn, nil
}

// SetTelemetry binds client-side outcome counters: hits and misses as
// the application observed them (a degraded-mode demotion counts as a
// miss) plus demotions. Call before the client takes traffic; it is not
// synchronized against Get/Set/Delete.
func (c *Client) SetTelemetry(reg *telemetry.Registry) {
	c.tmHits = reg.Counter("cache.client.hits")
	c.tmMisses = reg.Counter("cache.client.misses")
	c.tmDegraded = reg.Counter("cache.client.degraded")
	if c.router != nil {
		c.router.tmFanout = reg.Counter("cache.client.fanout_writes")
		c.router.tmHandoff = reg.Counter("cache.client.handoff_reads")
	}
}

// Degrade switches the client to graceful degradation: cache errors are
// demoted to misses/no-ops and counted. counter (optional) additionally
// receives each demotion, so degradations appear in the meter's report.
func (c *Client) Degrade(counter *meter.Counter) {
	c.counter = counter
	c.degrade.Store(true)
}

// Degraded returns how many cache errors have been demoted so far.
func (c *Client) Degraded() int64 { return c.degraded.Load() }

// demote records one degraded cache operation.
func (c *Client) demote() {
	c.degraded.Add(1)
	if c.counter != nil {
		c.counter.Inc()
	}
	c.tmDegraded.Inc()
}

// Get fetches key, reporting presence. In degraded mode a cache failure
// reads as a miss.
func (c *Client) Get(key string) ([]byte, bool, error) {
	return c.GetCtx(trace.SpanContext{}, key)
}

// GetCtx is Get carrying the caller's span context: the lookup's outcome
// (including a degraded-mode demotion, which reads as a miss) feeds the
// trace-level cache hit/miss counters, and the cache RPC's two protocol
// messages are counted against the request path. With a flight-recorder
// breakdown attached, the client-observed round trip lands in StageCache
// and a demotion marks the request degraded.
func (c *Client) GetCtx(sc trace.SpanContext, key string) ([]byte, bool, error) {
	b := sc.Breakdown()
	var t0 time.Time
	if b != nil {
		t0 = time.Now()
	}
	v, found, err := c.get(sc, key)
	if b != nil {
		b.Add(trace.StageCache, time.Since(t0))
	}
	if err != nil && c.degrade.Load() {
		c.demote()
		b.Mark(trace.FlagDegraded)
		err = nil
		v, found = nil, false
	}
	if err == nil {
		sc.Tracer().CountCacheHit(found)
		if found {
			c.tmHits.Inc()
		} else {
			c.tmMisses.Inc()
		}
	}
	return v, found, err
}

func (c *Client) get(sc trace.SpanContext, key string) ([]byte, bool, error) {
	if c.router != nil {
		return c.routedGet(sc, key)
	}
	conn, err := c.conn(key)
	if err != nil {
		return nil, false, err
	}
	// GetRequest shape {1: key}, encoded from the pool to keep the
	// request round trip allocation-free.
	e := wire.GetEncoder()
	e.String(1, key)
	respBody, err := rpc.CallTraced(conn, sc, "cache.Get", e.Bytes())
	wire.PutEncoder(e)
	if err == nil {
		sc.Tracer().CountCacheMsgs(2)
	}
	if err != nil {
		return nil, false, err
	}
	var resp GetResponse
	err = wire.Unmarshal(respBody, &resp)
	rpc.PutBuffer(respBody) // decode copied Value out; the buffer is dead
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	return resp.Value, true, nil
}

// Set stores key with no TTL.
func (c *Client) Set(key string, value []byte) error {
	return c.SetTTL(key, value, 0)
}

// SetTTL stores key, expiring after ttl (0 = never). In degraded mode a
// cache failure is a silent no-op: the next read re-populates.
func (c *Client) SetTTL(key string, value []byte, ttl time.Duration) error {
	return c.SetTTLCtx(trace.SpanContext{}, key, value, ttl)
}

// SetTTLCtx is SetTTL carrying the caller's span context.
func (c *Client) SetTTLCtx(sc trace.SpanContext, key string, value []byte, ttl time.Duration) error {
	b := sc.Breakdown()
	var t0 time.Time
	if b != nil {
		t0 = time.Now()
	}
	err := c.setTTL(sc, key, value, ttl)
	if b != nil {
		b.Add(trace.StageCache, time.Since(t0))
	}
	if err != nil {
		if c.degrade.Load() {
			c.demote()
			b.Mark(trace.FlagDegraded)
			return nil
		}
		return err
	}
	return nil
}

func (c *Client) setTTL(sc trace.SpanContext, key string, value []byte, ttl time.Duration) error {
	if c.router != nil {
		return c.routedSet(sc, key, value, ttl)
	}
	conn, err := c.conn(key)
	if err != nil {
		return err
	}
	// SetRequest shape {1: key, 2: value, 3: ttl_ms}.
	e := wire.GetEncoder()
	e.String(1, key)
	e.BytesField(2, value)
	e.Int64(3, int64(ttl/time.Millisecond))
	respBody, err := rpc.CallTraced(conn, sc, "cache.Set", e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return err
	}
	sc.Tracer().CountCacheMsgs(2)
	var ack Ack
	err = wire.Unmarshal(respBody, &ack)
	rpc.PutBuffer(respBody)
	return err
}

// Delete removes key, reporting whether it existed. In degraded mode a
// cache failure reports "did not exist" — the entry may survive until its
// node recovers, the bounded-staleness price of lookaside invalidation.
func (c *Client) Delete(key string) (bool, error) {
	return c.DeleteCtx(trace.SpanContext{}, key)
}

// DeleteCtx is Delete carrying the caller's span context.
func (c *Client) DeleteCtx(sc trace.SpanContext, key string) (bool, error) {
	b := sc.Breakdown()
	var t0 time.Time
	if b != nil {
		t0 = time.Now()
	}
	ok, err := c.delete(sc, key)
	if b != nil {
		b.Add(trace.StageCache, time.Since(t0))
	}
	if err != nil && c.degrade.Load() {
		c.demote()
		b.Mark(trace.FlagDegraded)
		return false, nil
	}
	return ok, err
}

func (c *Client) delete(sc trace.SpanContext, key string) (bool, error) {
	if c.router != nil {
		return c.routedDelete(sc, key)
	}
	conn, err := c.conn(key)
	if err != nil {
		return false, err
	}
	// DeleteRequest shape {1: key}.
	e := wire.GetEncoder()
	e.String(1, key)
	respBody, err := rpc.CallTraced(conn, sc, "cache.Delete", e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return false, err
	}
	sc.Tracer().CountCacheMsgs(2)
	var ack Ack
	err = wire.Unmarshal(respBody, &ack)
	rpc.PutBuffer(respBody)
	if err != nil {
		return false, err
	}
	return ack.OK, nil
}

// Close closes every connection, returning the first error.
func (c *Client) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
