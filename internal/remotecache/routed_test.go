package remotecache

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cachecost/internal/cluster"
	"cachecost/internal/fault"
	"cachecost/internal/rpc"
	"cachecost/internal/shardmgr"
	"cachecost/internal/telemetry"
)

// routedFixture is a 4-node cache tier behind a shard map.
type routedFixture struct {
	smap    *cluster.ShardMap
	servers map[string]*Server
	client  *Client
}

func newRoutedFixture(t *testing.T, shards int, inj *fault.Injector) *routedFixture {
	t.Helper()
	nodes := []string{"c0", "c1", "c2", "c3"}
	smap, err := cluster.NewShardMap(shards, nodes, 64)
	if err != nil {
		t.Fatal(err)
	}
	servers := make(map[string]*Server, len(nodes))
	conns := make(map[string]rpc.Conn, len(nodes))
	for _, n := range nodes {
		srv := NewServer(ServerConfig{CapacityBytes: 1 << 20, Name: "remotecache." + n})
		servers[n] = srv
		var conn rpc.Conn = rpc.NewDirect(srv.RPCServer())
		if inj != nil {
			conn = inj.Wrap(n, conn)
		}
		conns[n] = conn
	}
	c, err := NewRoutedClient(conns, smap)
	if err != nil {
		t.Fatal(err)
	}
	return &routedFixture{smap: smap, servers: servers, client: c}
}

func TestRoutedGetSetDelete(t *testing.T) {
	f := newRoutedFixture(t, 16, nil)
	c := f.client
	if _, found, err := c.Get("k"); err != nil || found {
		t.Fatalf("empty get = %v %v", found, err)
	}
	if err := c.Set("k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("k")
	if err != nil || !found || string(v) != "value" {
		t.Fatalf("get = %q %v %v", v, found, err)
	}
	// The entry lives on the shard's primary under an epoch-stamped key.
	pl := f.smap.Placement(f.smap.ShardOf("k"))
	if _, ok := f.servers[pl.Primary()].store.Get(cluster.EpochKey(pl.Epoch, "k")); !ok {
		t.Fatalf("primary %s does not hold the epoch-stamped entry", pl.Primary())
	}
	if existed, err := c.Delete("k"); err != nil || !existed {
		t.Fatalf("delete = %v %v", existed, err)
	}
	if _, found, _ := c.Get("k"); found {
		t.Fatal("get after delete")
	}
}

// Writes fan out to every replica and deletes clear every replica, so a
// read served by ANY replica is never stale.
func TestRoutedReplicaFanout(t *testing.T) {
	f := newRoutedFixture(t, 16, nil)
	c := f.client
	key := "celebrity"
	shard := f.smap.ShardOf(key)
	for _, n := range f.smap.Nodes() {
		f.smap.Replicate(shard, n) // idempotent-ish: primary refuses, others join
	}
	pl := f.smap.Placement(shard)
	if len(pl.Replicas) != 4 {
		t.Fatalf("setup: %d replicas", len(pl.Replicas))
	}
	if err := c.Set(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Every replica must hold the value — the read path may pick any.
	ek := cluster.EpochKey(pl.Epoch, key)
	for _, n := range pl.Replicas {
		if v, ok := f.servers[n].store.Get(ek); !ok || string(v) != "v1" {
			t.Fatalf("replica %s: %q %v", n, v, ok)
		}
	}
	// Overwrite, then read many times: no stale v1 from any replica.
	if err := c.Set(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, found, err := c.Get(key)
		if err != nil || !found || string(v) != "v2" {
			t.Fatalf("read %d: %q %v %v", i, v, found, err)
		}
	}
	// P2C actually spreads reads: with 4 replicas and 200 reads, more
	// than one node must have served traffic.
	served := 0
	for _, n := range pl.Replicas {
		if f.servers[n].Ops() > 10 {
			served++
		}
	}
	if served < 2 {
		t.Fatalf("reads did not spread over replicas (served=%d)", served)
	}
	if existed, err := c.Delete(key); err != nil || !existed {
		t.Fatalf("delete = %v %v", existed, err)
	}
	for _, n := range pl.Replicas {
		if _, ok := f.servers[n].store.Get(ek); ok {
			t.Fatalf("replica %s still holds deleted entry", n)
		}
	}
}

// The double-read handoff: during a migration a read that misses the
// new primary is served from the old primary at its old epoch and
// copied forward; after cutover the old node's entries are unreachable
// (superseded epoch), and a write made during the handoff survives it.
func TestRoutedHandoffDoubleRead(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := newRoutedFixture(t, 16, nil)
	c := f.client
	c.SetTelemetry(reg)
	key := "moving"
	shard := f.smap.ShardOf(key)
	if err := c.Set(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	oldPrimary := f.smap.Placement(shard).Primary()
	var target string
	for _, n := range f.smap.Nodes() {
		if n != oldPrimary {
			target = n
			break
		}
	}
	if !f.smap.BeginMigration(shard, target) {
		t.Fatal("BeginMigration refused")
	}
	// First read: new primary is cold → double-read old, copy forward.
	v, found, err := c.Get(key)
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("handoff read = %q %v %v", v, found, err)
	}
	if got := reg.Counter("cache.client.handoff_reads").Value(); got != 1 {
		t.Fatalf("handoff_reads = %d, want 1", got)
	}
	// Second read hits the warmed new primary — no further double-read.
	if _, found, _ := c.Get(key); !found {
		t.Fatal("copy-forward did not warm the new primary")
	}
	if got := reg.Counter("cache.client.handoff_reads").Value(); got != 1 {
		t.Fatalf("handoff_reads after warm read = %d, want 1", got)
	}
	// A write during the handoff invalidates the old copy and lands on
	// the new primary; it must survive cutover.
	if err := c.Set(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if !f.smap.FinishMigration(shard) {
		t.Fatal("FinishMigration refused")
	}
	v, found, err = c.Get(key)
	if err != nil || !found || string(v) != "v2" {
		t.Fatalf("post-cutover read = %q %v %v", v, found, err)
	}
	pl := f.smap.Placement(shard)
	if pl.Primary() != target {
		t.Fatalf("primary after cutover = %s, want %s", pl.Primary(), target)
	}
	// The old node still physically holds its entry — but under the
	// superseded epoch stamp, where no reader will ever look.
	if _, ok := f.servers[oldPrimary].store.Get(cluster.EpochKey(pl.Epoch-1, key)); !ok {
		t.Log("old entry already evicted (fine)") // deleted by the v2 write
	}
	if _, ok := f.servers[oldPrimary].store.Get(cluster.EpochKey(pl.Epoch, key)); ok {
		t.Fatal("old node holds an entry under the NEW epoch")
	}
}

// parseVersion extracts N from a "key@vN" test value.
func parseVersion(t testing.TB, v string) int {
	t.Helper()
	i := strings.LastIndex(v, "@v")
	if i < 0 {
		t.Fatalf("unversioned value %q", v)
	}
	n, err := strconv.Atoi(v[i+2:])
	if err != nil {
		t.Fatalf("bad version in %q: %v", v, err)
	}
	return n
}

// The no-lost-acknowledged-write chaos drill: kill the OLD primary in
// the middle of a handoff, in degraded mode. Reads may demote to misses
// (the dip the caller absorbs from storage) but must never return a
// value older than the last acknowledged write. Run with -race.
func TestRoutedKillOldNodeMidMigration(t *testing.T) {
	inj := fault.New(1, fault.Options{})
	f := newRoutedFixture(t, 16, inj)
	c := f.client
	c.Degrade(nil)

	// storage is the source of truth the cache fronts; version counters
	// let every read assert it observed nothing older than acked state.
	var mu sync.Mutex
	storage := map[string]string{}
	version := map[string]int{}

	write := func(key string) {
		mu.Lock()
		version[key]++
		val := fmt.Sprintf("%s@v%d", key, version[key])
		storage[key] = val
		mu.Unlock()
		// Lookaside write-through: storage first, then cache (fan-out +
		// old-primary invalidation). Degraded-mode errors are no-ops.
		if err := c.Set(key, []byte(val)); err != nil {
			t.Fatalf("set %s: %v", key, err)
		}
	}
	read := func(key string) {
		v, found, err := c.Get(key)
		if err != nil {
			t.Fatalf("get %s: %v", key, err)
		}
		mu.Lock()
		want := storage[key]
		mu.Unlock()
		if found && string(v) != want {
			t.Fatalf("STALE READ: %s = %q, storage has %q", key, v, want)
		}
		if !found {
			// Miss: lookaside refill from storage, like the service would.
			if err := c.Set(key, []byte(want)); err != nil {
				t.Fatalf("refill %s: %v", key, err)
			}
		}
	}

	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
		write(keys[i])
	}
	// Pick a key and migrate its shard; kill the old primary while the
	// double-read window is open.
	key := keys[7]
	shard := f.smap.ShardOf(key)
	oldPrimary := f.smap.Placement(shard).Primary()
	var target string
	for _, n := range f.smap.Nodes() {
		if n != oldPrimary {
			target = n
			break
		}
	}
	if !f.smap.BeginMigration(shard, target) {
		t.Fatal("BeginMigration refused")
	}
	read(key) // double-read serves from old, copies forward

	inj.Kill(oldPrimary)

	// Writes and reads during the outage, concurrently, under -race:
	// every read must see current-or-miss, never stale.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keys[(g*13+i)%len(keys)]
				mu.Lock()
				vBefore := version[k]
				mu.Unlock()
				v, found, err := c.Get(k)
				if err != nil {
					t.Errorf("get %s: %v", k, err)
					return
				}
				if found {
					// Stale = older than any write acknowledged BEFORE this
					// read began. A concurrent writer may have advanced the
					// key since, so equality with current storage is too
					// strict; the version ordering is the real invariant.
					got := parseVersion(t, string(v))
					if got < vBefore {
						t.Errorf("STALE READ %s = %q (v%d) but v%d was acked before the read",
							k, v, got, vBefore)
						return
					}
				}
			}
		}(g)
	}
	// Single writer mutating the migrating key's shard during the kill.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			write(key)
		}
	}()
	wg.Wait()

	// After the dust settles: the acknowledged value must be readable
	// (or a miss) — never an older version.
	read(key)
	if !f.smap.FinishMigration(shard) {
		t.Fatal("FinishMigration refused")
	}
	inj.Revive(oldPrimary)
	// Post-cutover, post-revival: the old node's surviving entries are
	// stamped with the superseded epoch — unreachable. Reads still
	// return only the current value.
	for i := 0; i < 10; i++ {
		read(key)
		write(key)
	}
	read(key)
	if got := c.Degraded(); got == 0 {
		t.Fatal("kill window demoted nothing — the fault never bit")
	}
}

// Concurrent reads and writes against a map being actively reshaped
// must stay linearizable-per-key under -race: this is the test that
// proves Placement snapshots + epoch stamps make stale routing
// harmless.
func TestRoutedConcurrentReshape(t *testing.T) {
	f := newRoutedFixture(t, 8, nil)
	c := f.client
	var stop sync.WaitGroup
	done := make(chan struct{})
	// Mutator: replicate/unreplicate/migrate continuously.
	stop.Add(1)
	go func() {
		defer stop.Done()
		nodes := f.smap.Nodes()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			s := i % f.smap.Shards()
			n := nodes[i%len(nodes)]
			switch i % 4 {
			case 0:
				f.smap.Replicate(s, n)
			case 1:
				f.smap.Unreplicate(s, n)
			case 2:
				if f.smap.BeginMigration(s, n) {
					f.smap.FinishMigration(s)
				}
			case 3:
				f.smap.Placement(s)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("key%d-%d", g, i%20)
				val := fmt.Sprintf("%s=%d", k, i)
				if err := c.Set(k, []byte(val)); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				v, found, err := c.Get(k)
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				// A concurrent reshape may have dropped the entry (epoch
				// bump = cold cache) — a miss is fine; a WRONG value is not.
				// Only this goroutine writes k, so found ⇒ exact match.
				if found && string(v) != val {
					t.Errorf("stale: %s = %q want %q", k, v, val)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	stop.Wait()
}

// The detector's serve-path cost, measured end-to-end: cache.Get
// through the server with the hot-key feed on vs off.
func BenchmarkServerGetDetector(b *testing.B) {
	run := func(b *testing.B, hot KeyRecorder) {
		srv := NewServer(ServerConfig{CapacityBytes: 1 << 20, Hot: hot})
		c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
		keys := make([]string, 256)
		for i := range keys {
			keys[i] = fmt.Sprintf("key%03d", i)
			if err := c.Set(keys[i], []byte("value")); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := c.Get(keys[i&255]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, shardmgr.NewDetector(32)) })
}
