package remotecache

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cachecost/internal/meter"
	"cachecost/internal/rpc"
)

func newNode(t *testing.T, m *meter.Meter, capacity int64) *Server {
	t.Helper()
	return NewServer(ServerConfig{CapacityBytes: capacity, Meter: m, RPCCost: rpc.DefaultCost})
}

func TestGetSetDeleteLoopback(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	c := NewSingleClient(rpc.NewLoopback(srv.RPCServer(), nil, nil, rpc.CostModel{}))

	if _, found, err := c.Get("k"); err != nil || found {
		t.Fatalf("empty get = %v %v", found, err)
	}
	if err := c.Set("k", []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("k")
	if err != nil || !found || string(v) != "value" {
		t.Fatalf("get = %q %v %v", v, found, err)
	}
	existed, err := c.Delete("k")
	if err != nil || !existed {
		t.Fatalf("delete = %v %v", existed, err)
	}
	if existed, _ := c.Delete("k"); existed {
		t.Fatal("double delete should report absence")
	}
}

func TestTTLExpires(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
	if err := c.SetTTL("k", []byte("v"), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, found, _ := c.Get("k"); found {
		t.Fatal("TTL entry should expire")
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	srv := newNode(t, nil, 4<<10)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
	for i := 0; i < 100; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), make([]byte, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if srv.UsedBytes() > 4<<10 {
		t.Fatalf("used %d exceeds capacity", srv.UsedBytes())
	}
	if srv.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestShardingAcrossNodes(t *testing.T) {
	nodes := map[string]*Server{}
	conns := map[string]rpc.Conn{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("cache%d", i)
		nodes[name] = newNode(t, nil, 1<<20)
		conns[name] = rpc.NewDirect(nodes[name].RPCServer())
	}
	c := NewClient(conns)
	const n = 300
	for i := 0; i < n; i++ {
		if err := c.Set(fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Every key must be readable back.
	for i := 0; i < n; i++ {
		if _, found, err := c.Get(fmt.Sprintf("key-%d", i)); err != nil || !found {
			t.Fatalf("key-%d: found=%v err=%v", i, found, err)
		}
	}
	// And the population must be spread across nodes.
	for name, node := range nodes {
		if node.Stats().Puts == 0 {
			t.Fatalf("node %s received no keys; sharding broken", name)
		}
	}
}

func TestMeteringAndMemoryProvision(t *testing.T) {
	m := meter.NewMeter()
	srv := NewServer(ServerConfig{CapacityBytes: 6 << 30, Meter: m, Name: "remotecache", RPCCost: rpc.DefaultCost})
	c := NewSingleClient(rpc.NewLoopback(srv.RPCServer(), m.Component("app"), meter.NewBurner(), rpc.DefaultCost))
	payload := make([]byte, 8<<10)
	for i := 0; i < 50; i++ {
		c.Set(fmt.Sprintf("k%d", i), payload)
		c.Get(fmt.Sprintf("k%d", i))
	}
	if m.Component("remotecache").Busy() <= 0 {
		t.Fatal("cache node CPU should be metered")
	}
	if m.Component("app").Busy() <= 0 {
		t.Fatal("client-side RPC overhead should be metered")
	}
	if got := m.Component("remotecache").MemBytes(); got != 6<<30 {
		t.Fatalf("provisioned mem = %d", got)
	}
}

func TestOverTCP(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.RPCServer().Serve(l)
	defer srv.RPCServer().Close()

	conn, err := rpc.Dial(l.Addr().String(), nil, nil, rpc.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewSingleClient(conn)
	defer c.Close()

	if err := c.Set("tcp-key", bytes.Repeat([]byte("x"), 10000)); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("tcp-key")
	if err != nil || !found || len(v) != 10000 {
		t.Fatalf("tcp get = %d bytes, %v, %v", len(v), found, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := newNode(t, nil, 8<<20)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%20)
				switch i % 3 {
				case 0:
					c.Set(key, []byte("v"))
				case 1:
					c.Get(key)
				case 2:
					c.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait() // run with -race
}

func TestEmptyClientErrors(t *testing.T) {
	c := NewClient(nil)
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("client with no nodes should error")
	}
	if err := c.Set("k", nil); err == nil {
		t.Fatal("set with no nodes should error")
	}
}

func BenchmarkRemoteGet1KB(b *testing.B) {
	srv := NewServer(ServerConfig{CapacityBytes: 64 << 20})
	c := NewSingleClient(rpc.NewLoopback(srv.RPCServer(), nil, nil, rpc.DefaultCost))
	c.Set("k", make([]byte, 1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := c.Get("k"); err != nil || !found {
			b.Fatal(err)
		}
	}
}

func TestServerResizeRepricesMeter(t *testing.T) {
	m := meter.NewMeter()
	srv := newNode(t, m, 64<<10)
	comp := m.Component("remotecache")
	c := NewSingleClient(rpc.NewLoopback(srv.RPCServer(), nil, nil, rpc.CostModel{}))
	for i := 0; i < 200; i++ {
		c.Set(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("x"), 400))
	}

	srv.Resize(8 << 10)
	if srv.Capacity() != 8<<10 || srv.UsedBytes() > 8<<10 {
		t.Fatalf("shrink: capacity=%d used=%d", srv.Capacity(), srv.UsedBytes())
	}
	if got := comp.MemBytes(); got != 8<<10 {
		t.Fatalf("metered mem after shrink = %d, want %d", got, 8<<10)
	}
	srv.Resize(1 << 20)
	if got := comp.MemBytes(); got != 1<<20 {
		t.Fatalf("metered mem after grow = %d, want %d", got, 1<<20)
	}
	// The node still serves after resizing both ways.
	if err := c.Set("post", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Get("post"); err != nil || !found || string(v) != "v" {
		t.Fatalf("get after resize = %q %v %v", v, found, err)
	}
}
