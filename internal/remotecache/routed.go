package remotecache

import (
	"fmt"
	"sync/atomic"
	"time"

	"cachecost/internal/cluster"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// Routed mode: instead of a private consistent-hash ring, the client
// resolves keys through a shared cluster.ShardMap — the dynamic
// placement the shard manager reshapes at runtime. Reads spread over a
// hot shard's replica set with power-of-two-choices on the client's own
// inflight counts; writes fan out to every replica (and invalidate the
// old primary during a handoff) so replicas never serve stale data;
// reads that miss during a handoff double-read the old primary at its
// old epoch and copy the value forward, warming the new primary without
// a stop-the-world transfer. Every cache key is stamped with the
// shard's epoch (cluster.EpochKey), so any entry written under a
// superseded placement is unreachable by construction — acting on a
// stale Placement snapshot is harmless, which is what lets the read
// path stay lock-free.

// inflightCell is one node's padded in-flight request count — the
// client-side queue-depth signal power-of-two-choices balances on.
type inflightCell struct {
	v atomic.Int64
	_ [56]byte
}

type router struct {
	smap     *cluster.ShardMap
	nodeIdx  map[string]int
	inflight []inflightCell
	rrseq    atomic.Uint64

	// Routing telemetry; nil (no-op) until SetTelemetry.
	tmFanout  *telemetry.Counter
	tmHandoff *telemetry.Counter
}

// NewRoutedClient builds a client that routes through smap. Every node
// in the map must have a connection.
func NewRoutedClient(conns map[string]rpc.Conn, smap *cluster.ShardMap) (*Client, error) {
	if smap == nil {
		return nil, fmt.Errorf("remotecache: routed client needs a shard map")
	}
	c := NewClient(conns)
	nodes := smap.Nodes()
	r := &router{
		smap:     smap,
		nodeIdx:  make(map[string]int, len(nodes)),
		inflight: make([]inflightCell, len(nodes)),
	}
	for i, n := range nodes {
		if _, ok := c.conns[n]; !ok {
			return nil, fmt.Errorf("remotecache: no connection for shard-map node %q", n)
		}
		r.nodeIdx[n] = i
	}
	c.router = r
	return c, nil
}

// ShardMap returns the map a routed client resolves through (nil for a
// ring-routed client).
func (c *Client) ShardMap() *cluster.ShardMap {
	if c.router == nil {
		return nil
	}
	return c.router.smap
}

// pickReplica chooses the replica to read from: the sole replica when
// the shard is unreplicated, otherwise two distinct candidates from a
// mixed sequence number and the one with fewer in-flight requests —
// power-of-two-choices over the client's own queue-depth estimate,
// which tracks true node load closely without any coordination.
func (r *router) pickReplica(pl cluster.ShardPlacement) string {
	n := len(pl.Replicas)
	if n == 1 {
		return pl.Replicas[0]
	}
	h := r.rrseq.Add(1)
	// splitmix64 finalizer: consecutive sequence numbers must not pick
	// correlated pairs.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	i := int(h % uint64(n))
	j := int((h >> 32) % uint64(n))
	if i == j {
		j = (j + 1) % n
	}
	a, b := pl.Replicas[i], pl.Replicas[j]
	if r.inflight[r.nodeIdx[a]].v.Load() <= r.inflight[r.nodeIdx[b]].v.Load() {
		return a
	}
	return b
}

// nodeConn resolves a placement node to its connection and inflight
// index.
func (c *Client) nodeConn(node string) (rpc.Conn, int, error) {
	conn, ok := c.conns[node]
	if !ok {
		return nil, 0, fmt.Errorf("remotecache: no connection for node %q", node)
	}
	return conn, c.router.nodeIdx[node], nil
}

// routedGet is the replica-aware read path. The epoch-stamped key is
// looked up on the chosen replica; during a handoff a miss falls
// through to the old primary at its old epoch, and a hit there is
// copied forward to the new primary so repeated reads converge onto the
// new placement while the handoff window is open.
func (c *Client) routedGet(sc trace.SpanContext, key string) ([]byte, bool, error) {
	r := c.router
	shard := r.smap.ShardOf(key)
	r.smap.Note(shard)
	pl := r.smap.Placement(shard)
	node := r.pickReplica(pl)
	v, found, err := c.getNode(sc, node, cluster.EpochKey(pl.Epoch, key))
	if err != nil || found {
		return v, found, err
	}
	if !pl.Migrating() {
		return nil, false, nil
	}
	// Double-read window: the new primary is still cold for this key.
	r.tmHandoff.Inc()
	v, found, err = c.getNode(sc, pl.Old, cluster.EpochKey(pl.OldEpoch, key))
	if err != nil || !found {
		return nil, false, err
	}
	// Copy forward so the next read hits the new primary directly. A
	// copy-forward failure propagates: in strict mode it is a real cache
	// error, in degraded mode the caller's demotion turns it into a miss
	// (the value is re-fetched from storage — wasteful, never wrong).
	if err := c.setNode(sc, pl.Replicas[0], cluster.EpochKey(pl.Epoch, key), v, 0); err != nil {
		return nil, false, err
	}
	return v, true, nil
}

// routedSet fans the write out to every replica at the current epoch,
// then invalidates the old primary's entry during a handoff. A write is
// acknowledged only once every replica holds it — a subsequent read
// from ANY replica sees it, so replica fan-out never serves stale data.
func (c *Client) routedSet(sc trace.SpanContext, key string, value []byte, ttl time.Duration) error {
	r := c.router
	shard := r.smap.ShardOf(key)
	r.smap.Note(shard)
	pl := r.smap.Placement(shard)
	ek := cluster.EpochKey(pl.Epoch, key)
	for i, node := range pl.Replicas {
		if err := c.setNode(sc, node, ek, value, ttl); err != nil {
			return err
		}
		if i > 0 {
			r.tmFanout.Inc()
		}
	}
	if pl.Migrating() {
		if _, err := c.deleteNode(sc, pl.Old, cluster.EpochKey(pl.OldEpoch, key)); err != nil {
			return err
		}
	}
	return nil
}

// routedDelete invalidates the key on every replica and, during a
// handoff, on the old primary.
func (c *Client) routedDelete(sc trace.SpanContext, key string) (bool, error) {
	r := c.router
	shard := r.smap.ShardOf(key)
	r.smap.Note(shard)
	pl := r.smap.Placement(shard)
	ek := cluster.EpochKey(pl.Epoch, key)
	existed := false
	for _, node := range pl.Replicas {
		ok, err := c.deleteNode(sc, node, ek)
		if err != nil {
			return false, err
		}
		existed = existed || ok
	}
	if pl.Migrating() {
		ok, err := c.deleteNode(sc, pl.Old, cluster.EpochKey(pl.OldEpoch, key))
		if err != nil {
			return false, err
		}
		existed = existed || ok
	}
	return existed, nil
}

// getNode / setNode / deleteNode are the single-node RPC legs of the
// routed ops: identical wire shapes to the ring-routed path, plus the
// inflight tracking power-of-two-choices feeds on.

func (c *Client) getNode(sc trace.SpanContext, node, key string) ([]byte, bool, error) {
	conn, idx, err := c.nodeConn(node)
	if err != nil {
		return nil, false, err
	}
	infl := &c.router.inflight[idx].v
	infl.Add(1)
	e := wire.GetEncoder()
	e.String(1, key)
	respBody, err := rpc.CallTraced(conn, sc, "cache.Get", e.Bytes())
	wire.PutEncoder(e)
	infl.Add(-1)
	if err != nil {
		return nil, false, err
	}
	sc.Tracer().CountCacheMsgs(2)
	var resp GetResponse
	err = wire.Unmarshal(respBody, &resp)
	rpc.PutBuffer(respBody)
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	return resp.Value, true, nil
}

func (c *Client) setNode(sc trace.SpanContext, node, key string, value []byte, ttl time.Duration) error {
	conn, idx, err := c.nodeConn(node)
	if err != nil {
		return err
	}
	infl := &c.router.inflight[idx].v
	infl.Add(1)
	e := wire.GetEncoder()
	e.String(1, key)
	e.BytesField(2, value)
	e.Int64(3, int64(ttl/time.Millisecond))
	respBody, err := rpc.CallTraced(conn, sc, "cache.Set", e.Bytes())
	wire.PutEncoder(e)
	infl.Add(-1)
	if err != nil {
		return err
	}
	sc.Tracer().CountCacheMsgs(2)
	var ack Ack
	err = wire.Unmarshal(respBody, &ack)
	rpc.PutBuffer(respBody)
	return err
}

func (c *Client) deleteNode(sc trace.SpanContext, node, key string) (bool, error) {
	conn, idx, err := c.nodeConn(node)
	if err != nil {
		return false, err
	}
	infl := &c.router.inflight[idx].v
	infl.Add(1)
	e := wire.GetEncoder()
	e.String(1, key)
	respBody, err := rpc.CallTraced(conn, sc, "cache.Delete", e.Bytes())
	wire.PutEncoder(e)
	infl.Add(-1)
	if err != nil {
		return false, err
	}
	sc.Tracer().CountCacheMsgs(2)
	var ack Ack
	err = wire.Unmarshal(respBody, &ack)
	rpc.PutBuffer(respBody)
	if err != nil {
		return false, err
	}
	return ack.OK, nil
}
