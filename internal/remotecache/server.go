package remotecache

import (
	"time"

	"cachecost/internal/cache"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// Server is one remote cache node: a byte-budgeted sharded LRU behind RPC
// methods cache.Get / cache.Set / cache.Delete and their batched
// counterparts cache.MultiGet / cache.MultiSet / cache.MultiDelete.
type Server struct {
	store  *cache.Sharded[[]byte]
	rpcsrv *rpc.Server
	comp   *meter.Component
	name   string
}

// ServerConfig parameterizes a cache node.
type ServerConfig struct {
	// CapacityBytes is the memory budget. Required.
	CapacityBytes int64
	// Shards is the lock-shard count. Default 16.
	Shards int
	// Meter receives the node's busy time and memory provision under the
	// component name Name. Nil disables metering.
	Meter *meter.Meter
	// Name is the meter component. Default "remotecache".
	Name string
	// RPCCost is the transport overhead model.
	RPCCost rpc.CostModel
	// Tracer joins wire-carried span contexts when the node serves TCP
	// connections. Loopback callers pass their context in-process and do
	// not need it. Nil disables the join.
	Tracer *trace.Tracer
	// Telemetry, when set, registers a pull collector exposing the node's
	// hit/miss/eviction counters and used bytes under Name, and feeds
	// per-dispatch rpc metrics.
	Telemetry *telemetry.Registry
}

// NewServer builds a cache node.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Name == "" {
		cfg.Name = "remotecache"
	}
	s := &Server{
		store: cache.NewSharded[[]byte](cfg.CapacityBytes, cfg.Shards, func(k string, v []byte) int64 {
			return int64(len(k) + len(v) + 64) // include per-entry overhead
		}),
		name: cfg.Name,
	}
	var burner *meter.Burner
	if cfg.Meter != nil {
		s.comp = cfg.Meter.Component(cfg.Name)
		s.comp.SetMemBytes(cfg.CapacityBytes)
		burner = meter.NewBurner()
	}
	s.rpcsrv = rpc.NewServer(s.comp, burner, cfg.RPCCost)
	if cfg.Tracer != nil {
		s.rpcsrv.SetTracer(cfg.Tracer, cfg.Name+".rpc")
	}
	if cfg.Telemetry != nil {
		s.rpcsrv.SetMetrics(rpc.NewMetrics(cfg.Telemetry, cfg.Name))
		s.RegisterTelemetry(cfg.Telemetry)
	}
	s.rpcsrv.HandleCtx("cache.Get", s.handleGet)
	s.rpcsrv.HandleCtx("cache.Set", s.handleSet)
	s.rpcsrv.HandleCtx("cache.Delete", s.handleDelete)
	s.rpcsrv.HandleCtx("cache.MultiGet", s.handleMultiGet)
	s.rpcsrv.HandleCtx("cache.MultiSet", s.handleMultiSet)
	s.rpcsrv.HandleCtx("cache.MultiDelete", s.handleMultiDelete)
	return s
}

// RPCServer exposes the node for rpc.Serve / loopback connections.
func (s *Server) RPCServer() *rpc.Server { return s.rpcsrv }

// Stats returns the cache counters.
func (s *Server) Stats() cache.Stats { return s.store.Stats() }

// UsedBytes returns the budgeted bytes currently cached.
func (s *Server) UsedBytes() int64 { return s.store.UsedBytes() }

// RegisterTelemetry installs a pull collector publishing the node's
// cache counters and used bytes. The store's own atomics are read only
// at scrape time; the serving hot path is untouched.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	lbl := []telemetry.Label{telemetry.L("node", s.name)}
	reg.RegisterCollector("remotecache."+s.name, func(emit func(telemetry.Sample)) {
		st := s.store.Stats()
		emit(telemetry.Sample{Name: "cache.hits", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Hits)})
		emit(telemetry.Sample{Name: "cache.misses", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Misses)})
		emit(telemetry.Sample{Name: "cache.evictions", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Evictions)})
		emit(telemetry.Sample{Name: "cache.expirations", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Expirations)})
		emit(telemetry.Sample{Name: "cache.used_bytes", Labels: lbl, Kind: telemetry.KindGauge, Value: float64(s.store.UsedBytes())})
	})
}

func (s *Server) handleGet(sc trace.SpanContext, req []byte) ([]byte, error) {
	// Decode the key zero-copy: it is only a lookup argument, dead once
	// Get returns, so it may alias the transport's request buffer. (Set
	// and Delete keep the copying decode — Put retains its key.)
	var key string
	err := wire.Decode(req, func(d *wire.Decoder) (err error) {
		return decodeFields(d, func(f uint32, t wire.Type) error {
			if f == 1 {
				key, err = d.StringZC()
				return err
			}
			return d.Skip(t)
		})
	})
	if err != nil {
		return nil, err
	}
	act, _ := trace.Start(sc, s.name, "get")
	v, ok := s.store.Get(key)
	act.AnnotateBool("cache.hit", ok)
	resp := wire.Marshal(&GetResponse{Found: ok, Value: v})
	act.SetBytes(len(req), len(resp))
	act.End()
	return resp, nil
}

func (s *Server) handleSet(sc trace.SpanContext, req []byte) ([]byte, error) {
	var r SetRequest
	if err := wire.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	act, _ := trace.Start(sc, s.name, "set")
	// SetRequest's decode copied Key and Value out of req, so the stored
	// value is independent of the transport buffer and immutable from
	// here on; concurrent readers may share it safely.
	if r.TTLms > 0 {
		s.store.PutTTL(r.Key, r.Value, time.Duration(r.TTLms)*time.Millisecond)
	} else {
		s.store.Put(r.Key, r.Value)
	}
	act.SetBytes(len(req), 0)
	act.End()
	return wire.Marshal(&Ack{OK: true}), nil
}

func (s *Server) handleDelete(sc trace.SpanContext, req []byte) ([]byte, error) {
	var r DeleteRequest
	if err := wire.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	act, _ := trace.Start(sc, s.name, "delete")
	existed := s.store.Delete(r.Key)
	act.AnnotateBool("cache.hit", existed)
	act.End()
	return wire.Marshal(&Ack{OK: existed}), nil
}
