package remotecache

import (
	"sync/atomic"
	"time"

	"cachecost/internal/cache"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// KeyRecorder observes every key a cache node serves a Get for. The
// shard manager's hot-key detector implements it; the string passed MAY
// alias a transport buffer, so implementations must clone anything they
// retain.
type KeyRecorder interface {
	Record(key string)
}

// Server is one remote cache node: a byte-budgeted sharded LRU behind RPC
// methods cache.Get / cache.Set / cache.Delete and their batched
// counterparts cache.MultiGet / cache.MultiSet / cache.MultiDelete.
type Server struct {
	store  *cache.Sharded[[]byte]
	rpcsrv *rpc.Server
	comp   *meter.Component
	name   string
	hot    KeyRecorder
	slots  chan struct{}
	serve  time.Duration
	ops    atomic.Int64
}

// ServerConfig parameterizes a cache node.
type ServerConfig struct {
	// CapacityBytes is the memory budget. Required.
	CapacityBytes int64
	// Shards is the lock-shard count. Default 16.
	Shards int
	// Meter receives the node's busy time and memory provision under the
	// component name Name. Nil disables metering.
	Meter *meter.Meter
	// Name is the meter component. Default "remotecache".
	Name string
	// RPCCost is the transport overhead model.
	RPCCost rpc.CostModel
	// Tracer joins wire-carried span contexts when the node serves TCP
	// connections. Loopback callers pass their context in-process and do
	// not need it. Nil disables the join.
	Tracer *trace.Tracer
	// Telemetry, when set, registers a pull collector exposing the node's
	// hit/miss/eviction counters and used bytes under Name, and feeds
	// per-dispatch rpc metrics.
	Telemetry *telemetry.Registry
	// Hot, when set, observes every Get-served key — the shard manager's
	// hot-key detector. Nil disables the feed at zero cost.
	Hot KeyRecorder
	// MaxConcurrent, when > 0, caps the node's concurrently served
	// requests with a semaphore: arrivals beyond the cap queue. In the
	// in-process laboratory every node shares the host's cores, so
	// without a cap a "hot" node just borrows more CPU and never
	// saturates; the semaphore models a node's fixed serving capacity,
	// making overload visible as wall-clock queueing (which the
	// intended-arrival clock surfaces) rather than as hidden CPU theft.
	MaxConcurrent int
	// ServeTime, when > 0, holds a serving slot for that wall-clock
	// duration on every request. Together with MaxConcurrent this gives
	// the node a real, fixed serving rate — MaxConcurrent/ServeTime
	// requests per second — so a node whose demand exceeds it queues in
	// wall-clock time. The slot is occupied by sleeping, not by burning
	// host CPU: on a small host N modeled nodes must be able to serve
	// (and saturate) independently, which CPU burning cannot express —
	// the shared host CPU would saturate before any one node did. The
	// duration is attributed to the node's meter component as busy
	// serving time, so the cost model sees it like any other work. Zero
	// (the default) keeps the raw in-memory lookup speed.
	ServeTime time.Duration
}

// NewServer builds a cache node.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Name == "" {
		cfg.Name = "remotecache"
	}
	s := &Server{
		store: cache.NewSharded[[]byte](cfg.CapacityBytes, cfg.Shards, func(k string, v []byte) int64 {
			return int64(len(k) + len(v) + 64) // include per-entry overhead
		}),
		name: cfg.Name,
		hot:  cfg.Hot,
	}
	if cfg.MaxConcurrent > 0 {
		s.slots = make(chan struct{}, cfg.MaxConcurrent)
	}
	s.serve = cfg.ServeTime
	var burner *meter.Burner
	if cfg.Meter != nil {
		s.comp = cfg.Meter.Component(cfg.Name)
		s.comp.SetMemBytes(cfg.CapacityBytes)
		burner = meter.NewBurner()
	}
	s.rpcsrv = rpc.NewServer(s.comp, burner, cfg.RPCCost)
	if cfg.Tracer != nil {
		s.rpcsrv.SetTracer(cfg.Tracer, cfg.Name+".rpc")
	}
	if cfg.Telemetry != nil {
		s.rpcsrv.SetMetrics(rpc.NewMetrics(cfg.Telemetry, cfg.Name))
		s.RegisterTelemetry(cfg.Telemetry)
	}
	s.rpcsrv.HandleCtx("cache.Get", s.handleGet)
	s.rpcsrv.HandleCtx("cache.Set", s.handleSet)
	s.rpcsrv.HandleCtx("cache.Delete", s.handleDelete)
	s.rpcsrv.HandleCtx("cache.MultiGet", s.handleMultiGet)
	s.rpcsrv.HandleCtx("cache.MultiSet", s.handleMultiSet)
	s.rpcsrv.HandleCtx("cache.MultiDelete", s.handleMultiDelete)
	return s
}

// RPCServer exposes the node for rpc.Serve / loopback connections.
func (s *Server) RPCServer() *rpc.Server { return s.rpcsrv }

// Ops returns the number of requests the node has served — the
// per-node demand signal the hot-shard experiment reports as QPS
// spread.
func (s *Server) Ops() int64 { return s.ops.Load() }

// acquire takes a serving slot, blocking when the node is already
// serving MaxConcurrent requests, tallies the request and occupies the
// slot for the configured serving time. Paired with release; both are a
// single nil test when no cap is configured.
func (s *Server) acquire() {
	s.ops.Add(1)
	if s.slots != nil {
		s.slots <- struct{}{}
	}
	if s.serve > 0 {
		time.Sleep(s.serve)
		if s.comp != nil {
			s.comp.AddBusy(s.serve)
		}
	}
}

func (s *Server) release() {
	if s.slots != nil {
		<-s.slots
	}
}

// Preload bulk-loads one entry directly into the node's store, outside
// the serving path: no serving slot, no serve work, no ops tally and no
// hot-key observation. Experiment harnesses use it to warm a cache tier
// the way an operator does before shifting traffic onto it. Callers on
// an epoch-stamped tier must pass the epoch-stamped key.
func (s *Server) Preload(key string, value []byte) {
	s.store.Put(key, value)
}

// Stats returns the cache counters.
func (s *Server) Stats() cache.Stats { return s.store.Stats() }

// UsedBytes returns the budgeted bytes currently cached.
func (s *Server) UsedBytes() int64 { return s.store.UsedBytes() }

// Capacity returns the node's current byte budget.
func (s *Server) Capacity() int64 { return s.store.Capacity() }

// Resize moves the node's byte budget — shrinking evicts down, growing
// keeps residents — and re-prices its metered memory on the spot, so
// the bill follows the elastic controller's every step.
func (s *Server) Resize(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	s.store.Resize(bytes)
	if s.comp != nil {
		s.comp.SetMemBytes(bytes)
	}
}

// RegisterTelemetry installs a pull collector publishing the node's
// cache counters and used bytes. The store's own atomics are read only
// at scrape time; the serving hot path is untouched.
func (s *Server) RegisterTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	lbl := []telemetry.Label{telemetry.L("node", s.name)}
	reg.RegisterCollector("remotecache."+s.name, func(emit func(telemetry.Sample)) {
		st := s.store.Stats()
		emit(telemetry.Sample{Name: "cache.hits", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Hits)})
		emit(telemetry.Sample{Name: "cache.misses", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Misses)})
		emit(telemetry.Sample{Name: "cache.evictions", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Evictions)})
		emit(telemetry.Sample{Name: "cache.expirations", Labels: lbl, Kind: telemetry.KindCounter, Value: float64(st.Expirations)})
		emit(telemetry.Sample{Name: "cache.used_bytes", Labels: lbl, Kind: telemetry.KindGauge, Value: float64(s.store.UsedBytes())})
		emit(telemetry.Sample{Name: "cache.capacity_bytes", Labels: lbl, Kind: telemetry.KindGauge, Value: float64(s.store.Capacity())})
	})
}

func (s *Server) handleGet(sc trace.SpanContext, req []byte) ([]byte, error) {
	// Decode the key zero-copy: it is only a lookup argument, dead once
	// Get returns, so it may alias the transport's request buffer. (Set
	// and Delete keep the copying decode — Put retains its key.)
	var key string
	err := wire.Decode(req, func(d *wire.Decoder) (err error) {
		return decodeFields(d, func(f uint32, t wire.Type) error {
			if f == 1 {
				key, err = d.StringZC()
				return err
			}
			return d.Skip(t)
		})
	})
	if err != nil {
		return nil, err
	}
	s.acquire()
	defer s.release()
	act, _ := trace.Start(sc, s.name, "get")
	v, ok := s.store.Get(key)
	if s.hot != nil {
		// key aliases the request buffer; the detector clones on retain.
		s.hot.Record(key)
	}
	act.AnnotateBool("cache.hit", ok)
	resp := wire.Marshal(&GetResponse{Found: ok, Value: v})
	act.SetBytes(len(req), len(resp))
	act.End()
	return resp, nil
}

func (s *Server) handleSet(sc trace.SpanContext, req []byte) ([]byte, error) {
	var r SetRequest
	if err := wire.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	s.acquire()
	defer s.release()
	act, _ := trace.Start(sc, s.name, "set")
	// SetRequest's decode copied Key and Value out of req, so the stored
	// value is independent of the transport buffer and immutable from
	// here on; concurrent readers may share it safely.
	if r.TTLms > 0 {
		s.store.PutTTL(r.Key, r.Value, time.Duration(r.TTLms)*time.Millisecond)
	} else {
		s.store.Put(r.Key, r.Value)
	}
	act.SetBytes(len(req), 0)
	act.End()
	return wire.Marshal(&Ack{OK: true}), nil
}

func (s *Server) handleDelete(sc trace.SpanContext, req []byte) ([]byte, error) {
	var r DeleteRequest
	if err := wire.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	s.acquire()
	defer s.release()
	act, _ := trace.Start(sc, s.name, "delete")
	existed := s.store.Delete(r.Key)
	act.AnnotateBool("cache.hit", existed)
	act.End()
	return wire.Marshal(&Ack{OK: existed}), nil
}
