package remotecache

import (
	"fmt"
	"time"

	"cachecost/internal/rpc"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
)

// Multi-key operations. A batch ships one request frame and one response
// frame per owning cache node regardless of how many keys it carries, so
// the per-message costs the paper's model charges — RPC framing, flush,
// dispatch, trace-context propagation — are amortized over the batch.
// Response vectors are positional: Found[i] and Values[i] answer Keys[i]
// of the request, with Values[i] empty on a miss.
//
// Partial-result semantics: the client fans a batch out per owning node
// (consistent hashing, same ring as the scalar ops). In degraded mode a
// failed node RPC demotes that node's slice of the batch to misses —
// counted as ONE demotion, it was one RPC — while other nodes' results
// stand. In strict mode any node failure fails the whole batch.

// MultiGetRequest asks for many keys in one frame.
type MultiGetRequest struct {
	Keys []string
}

// MarshalWire implements wire.Marshaler.
func (r *MultiGetRequest) MarshalWire(e *wire.Encoder) { e.StringSlice(1, r.Keys) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *MultiGetRequest) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		if f == 1 {
			var k string
			k, err = d.String()
			r.Keys = append(r.Keys, k)
			return err
		}
		return d.Skip(t)
	})
}

// MultiGetResponse carries positional results: Found as a packed bitmap,
// Values as repeated bytes aligned with the request's key order.
type MultiGetResponse struct {
	Found  []bool
	Values [][]byte
}

// MarshalWire implements wire.Marshaler.
func (r *MultiGetResponse) MarshalWire(e *wire.Encoder) {
	e.PackedBools(1, r.Found)
	e.BytesSlice(2, r.Values)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *MultiGetResponse) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		switch f {
		case 1:
			r.Found, err = d.PackedBools(r.Found)
		case 2:
			var b []byte
			b, err = d.Bytes()
			if len(b) == 0 {
				r.Values = append(r.Values, nil)
			} else {
				r.Values = append(r.Values, append([]byte(nil), b...))
			}
		default:
			err = d.Skip(t)
		}
		return err
	})
}

// MultiSetRequest stores many key/value pairs, sharing one TTL — batches
// come from one backfill decision, so per-key TTLs would only pad the
// frame.
type MultiSetRequest struct {
	Keys   []string
	Values [][]byte
	TTLms  int64
}

// MarshalWire implements wire.Marshaler.
func (r *MultiSetRequest) MarshalWire(e *wire.Encoder) {
	e.StringSlice(1, r.Keys)
	e.BytesSlice(2, r.Values)
	e.Int64(3, r.TTLms)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *MultiSetRequest) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		switch f {
		case 1:
			var k string
			k, err = d.String()
			r.Keys = append(r.Keys, k)
		case 2:
			var b []byte
			b, err = d.Bytes()
			r.Values = append(r.Values, append([]byte(nil), b...))
		case 3:
			r.TTLms, err = d.Int64()
		default:
			err = d.Skip(t)
		}
		return err
	})
}

// MultiDeleteRequest removes many keys in one frame.
type MultiDeleteRequest struct {
	Keys []string
}

// MarshalWire implements wire.Marshaler.
func (r *MultiDeleteRequest) MarshalWire(e *wire.Encoder) { e.StringSlice(1, r.Keys) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *MultiDeleteRequest) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		if f == 1 {
			var k string
			k, err = d.String()
			r.Keys = append(r.Keys, k)
			return err
		}
		return d.Skip(t)
	})
}

// MultiAck is the positional write reply: OK[i] answers Keys[i] (for
// MultiDelete, whether the key existed).
type MultiAck struct {
	OK []bool
}

// MarshalWire implements wire.Marshaler.
func (r *MultiAck) MarshalWire(e *wire.Encoder) { e.PackedBools(1, r.OK) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *MultiAck) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		if f == 1 {
			r.OK, err = d.PackedBools(r.OK)
			return err
		}
		return d.Skip(t)
	})
}

// nodeBatch is one owning node's slice of a batch: the keys it owns and
// their positions in the caller's order.
type nodeBatch struct {
	node string
	conn rpc.Conn
	keys []string
	idx  []int
}

// group partitions keys by owning node, preserving each key's position.
// Single-node rings (the common experiment topology) yield one group.
func (c *Client) group(keys []string) ([]*nodeBatch, error) {
	var groups []*nodeBatch
	byNode := make(map[string]*nodeBatch, 1)
	for i, key := range keys {
		node := c.ring.Owner(key)
		if node == "" {
			return nil, ErrNoNodes
		}
		g, ok := byNode[node]
		if !ok {
			conn, okc := c.conns[node]
			if !okc {
				return nil, fmt.Errorf("remotecache: no connection for node %q", node)
			}
			g = &nodeBatch{node: node, conn: conn}
			byNode[node] = g
			groups = append(groups, g)
		}
		g.keys = append(g.keys, key)
		g.idx = append(g.idx, i)
	}
	return groups, nil
}

// MultiGet fetches keys, reporting per-key presence positionally.
func (c *Client) MultiGet(keys []string) ([][]byte, []bool, error) {
	return c.MultiGetCtx(trace.SpanContext{}, keys)
}

// MultiGetCtx is MultiGet carrying the caller's span context. Each node
// RPC counts two cache messages (one request, one response frame —
// NOT two per key); each key's outcome feeds the trace hit/miss
// counters exactly as the scalar path would. In degraded mode a failed
// node RPC demotes its keys to misses without failing the batch.
func (c *Client) MultiGetCtx(sc trace.SpanContext, keys []string) ([][]byte, []bool, error) {
	b := sc.Breakdown()
	if b == nil {
		return c.multiGetCtx(sc, keys)
	}
	t0 := time.Now()
	d0 := c.degraded.Load()
	v, f, err := c.multiGetCtx(sc, keys)
	b.Add(trace.StageCache, time.Since(t0))
	// A moved demotion counter means this batch (or, rarely, a concurrent
	// one) hit the degraded path; marking degraded is the mildest outcome
	// bit, so the imprecision is harmless.
	if c.degraded.Load() != d0 {
		b.Mark(trace.FlagDegraded)
	}
	return v, f, err
}

func (c *Client) multiGetCtx(sc trace.SpanContext, keys []string) ([][]byte, []bool, error) {
	values := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	if c.router != nil {
		// Routed mode falls back to per-key scalar ops: each key's replica
		// choice and handoff state is independent, so there is no single
		// owning node to batch against. (Per-replica-set batching is a
		// possible future optimization; demotions count per key here.)
		for i, k := range keys {
			v, f, err := c.get(sc, k)
			if err != nil {
				if !c.degrade.Load() {
					return nil, nil, err
				}
				c.demote()
				continue
			}
			values[i], found[i] = v, f
		}
		for _, f := range found {
			sc.Tracer().CountCacheHit(f)
			if f {
				c.tmHits.Inc()
			} else {
				c.tmMisses.Inc()
			}
		}
		return values, found, nil
	}
	groups, err := c.group(keys)
	if err != nil {
		if !c.degrade.Load() {
			return nil, nil, err
		}
		c.demote()
		groups = nil // every key reads as a miss
	}
	for _, g := range groups {
		resp, err := c.multiGetNode(sc, g)
		if err != nil {
			if !c.degrade.Load() {
				return nil, nil, err
			}
			c.demote() // one failed RPC, one demotion; g's keys stay misses
			continue
		}
		for i, ki := range g.idx {
			values[ki], found[ki] = resp.Values[i], resp.Found[i]
		}
	}
	for _, f := range found {
		sc.Tracer().CountCacheHit(f)
		if f {
			c.tmHits.Inc()
		} else {
			c.tmMisses.Inc()
		}
	}
	return values, found, nil
}

func (c *Client) multiGetNode(sc trace.SpanContext, g *nodeBatch) (*MultiGetResponse, error) {
	e := wire.GetEncoder()
	e.StringSlice(1, g.keys)
	respBody, err := rpc.CallTraced(g.conn, sc, "cache.MultiGet", e.Bytes())
	wire.PutEncoder(e)
	if err != nil {
		return nil, err
	}
	sc.Tracer().CountCacheMsgs(2)
	resp := &MultiGetResponse{
		Found:  make([]bool, 0, len(g.keys)),
		Values: make([][]byte, 0, len(g.keys)),
	}
	err = wire.Unmarshal(respBody, resp)
	rpc.PutBuffer(respBody) // decode copied the values out; the buffer is dead
	if err != nil {
		return nil, err
	}
	if len(resp.Found) != len(g.keys) || len(resp.Values) != len(g.keys) {
		return nil, fmt.Errorf("remotecache: MultiGet response misaligned: %d keys, %d found, %d values",
			len(g.keys), len(resp.Found), len(resp.Values))
	}
	return resp, nil
}

// MultiSetTTL stores keys[i] = values[i], all expiring after ttl
// (0 = never).
func (c *Client) MultiSetTTL(keys []string, values [][]byte, ttl time.Duration) error {
	return c.MultiSetTTLCtx(trace.SpanContext{}, keys, values, ttl)
}

// MultiSetTTLCtx is MultiSetTTL carrying the caller's span context. In
// degraded mode a failed node RPC is one counted no-op demotion: the
// next read of those keys re-populates.
func (c *Client) MultiSetTTLCtx(sc trace.SpanContext, keys []string, values [][]byte, ttl time.Duration) error {
	b := sc.Breakdown()
	if b == nil {
		return c.multiSetTTLCtx(sc, keys, values, ttl)
	}
	t0 := time.Now()
	d0 := c.degraded.Load()
	err := c.multiSetTTLCtx(sc, keys, values, ttl)
	b.Add(trace.StageCache, time.Since(t0))
	if c.degraded.Load() != d0 {
		b.Mark(trace.FlagDegraded)
	}
	return err
}

func (c *Client) multiSetTTLCtx(sc trace.SpanContext, keys []string, values [][]byte, ttl time.Duration) error {
	if len(keys) != len(values) {
		return fmt.Errorf("remotecache: MultiSet %d keys but %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	if c.router != nil {
		for i, k := range keys {
			if err := c.setTTL(sc, k, values[i], ttl); err != nil {
				if !c.degrade.Load() {
					return err
				}
				c.demote()
			}
		}
		return nil
	}
	groups, err := c.group(keys)
	if err != nil {
		if !c.degrade.Load() {
			return err
		}
		c.demote()
		return nil
	}
	for _, g := range groups {
		e := wire.GetEncoder()
		e.StringSlice(1, g.keys)
		for _, ki := range g.idx {
			e.BytesField(2, values[ki])
		}
		e.Int64(3, int64(ttl/time.Millisecond))
		respBody, err := rpc.CallTraced(g.conn, sc, "cache.MultiSet", e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			if !c.degrade.Load() {
				return err
			}
			c.demote()
			continue
		}
		sc.Tracer().CountCacheMsgs(2)
		var ack MultiAck
		err = wire.Unmarshal(respBody, &ack)
		rpc.PutBuffer(respBody)
		if err != nil {
			return err
		}
	}
	return nil
}

// MultiDelete removes keys — the batched invalidation path. In degraded
// mode a failed node RPC is one counted demotion; those entries may
// survive until their node recovers, the same bounded-staleness price
// the scalar Delete documents.
func (c *Client) MultiDelete(keys []string) error {
	return c.MultiDeleteCtx(trace.SpanContext{}, keys)
}

// MultiDeleteCtx is MultiDelete carrying the caller's span context.
func (c *Client) MultiDeleteCtx(sc trace.SpanContext, keys []string) error {
	b := sc.Breakdown()
	if b == nil {
		return c.multiDeleteCtx(sc, keys)
	}
	t0 := time.Now()
	d0 := c.degraded.Load()
	err := c.multiDeleteCtx(sc, keys)
	b.Add(trace.StageCache, time.Since(t0))
	if c.degraded.Load() != d0 {
		b.Mark(trace.FlagDegraded)
	}
	return err
}

func (c *Client) multiDeleteCtx(sc trace.SpanContext, keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	if c.router != nil {
		for _, k := range keys {
			if _, err := c.delete(sc, k); err != nil {
				if !c.degrade.Load() {
					return err
				}
				c.demote()
			}
		}
		return nil
	}
	groups, err := c.group(keys)
	if err != nil {
		if !c.degrade.Load() {
			return err
		}
		c.demote()
		return nil
	}
	for _, g := range groups {
		e := wire.GetEncoder()
		e.StringSlice(1, g.keys)
		respBody, err := rpc.CallTraced(g.conn, sc, "cache.MultiDelete", e.Bytes())
		wire.PutEncoder(e)
		if err != nil {
			if !c.degrade.Load() {
				return err
			}
			c.demote()
			continue
		}
		sc.Tracer().CountCacheMsgs(2)
		var ack MultiAck
		err = wire.Unmarshal(respBody, &ack)
		rpc.PutBuffer(respBody)
		if err != nil {
			return err
		}
	}
	return nil
}

// handleMultiGet serves cache.MultiGet. Keys are decoded zero-copy (they
// are lookup arguments, dead once the handler returns); the response is
// one frame with a packed found bitmap and the values positionally.
func (s *Server) handleMultiGet(sc trace.SpanContext, req []byte) ([]byte, error) {
	var keys []string
	err := wire.Decode(req, func(d *wire.Decoder) error {
		return decodeFields(d, func(f uint32, t wire.Type) error {
			if f == 1 {
				k, err := d.StringZC()
				if err != nil {
					return err
				}
				keys = append(keys, k)
				return nil
			}
			return d.Skip(t)
		})
	})
	if err != nil {
		return nil, err
	}
	s.acquire()
	defer s.release()
	act, _ := trace.Start(sc, s.name, "multiget")
	found := make([]bool, len(keys))
	values := make([][]byte, len(keys))
	hits := 0
	for i, k := range keys {
		values[i], found[i] = s.store.Get(k)
		if s.hot != nil {
			s.hot.Record(k)
		}
		if found[i] {
			hits++
		}
	}
	e := wire.GetEncoder()
	e.PackedBools(1, found)
	e.BytesSlice(2, values)
	resp := append([]byte(nil), e.Bytes()...)
	wire.PutEncoder(e)
	act.AnnotateInt("batch.keys", int64(len(keys)))
	act.AnnotateInt("batch.hits", int64(hits))
	act.SetBytes(len(req), len(resp))
	act.End()
	return resp, nil
}

// handleMultiSet serves cache.MultiSet. The decode copies keys and
// values out of the transport buffer (the store retains them).
func (s *Server) handleMultiSet(sc trace.SpanContext, req []byte) ([]byte, error) {
	var r MultiSetRequest
	if err := wire.Unmarshal(req, &r); err != nil {
		return nil, err
	}
	if len(r.Keys) != len(r.Values) {
		return nil, fmt.Errorf("remotecache: MultiSet %d keys but %d values", len(r.Keys), len(r.Values))
	}
	s.acquire()
	defer s.release()
	act, _ := trace.Start(sc, s.name, "multiset")
	ok := make([]bool, len(r.Keys))
	for i, k := range r.Keys {
		if r.TTLms > 0 {
			s.store.PutTTL(k, r.Values[i], time.Duration(r.TTLms)*time.Millisecond)
		} else {
			s.store.Put(k, r.Values[i])
		}
		ok[i] = true
	}
	act.AnnotateInt("batch.keys", int64(len(r.Keys)))
	act.SetBytes(len(req), 0)
	act.End()
	e := wire.GetEncoder()
	e.PackedBools(1, ok)
	resp := append([]byte(nil), e.Bytes()...)
	wire.PutEncoder(e)
	return resp, nil
}

// handleMultiDelete serves cache.MultiDelete; OK[i] reports whether
// key i existed.
func (s *Server) handleMultiDelete(sc trace.SpanContext, req []byte) ([]byte, error) {
	var keys []string
	err := wire.Decode(req, func(d *wire.Decoder) error {
		return decodeFields(d, func(f uint32, t wire.Type) error {
			if f == 1 {
				k, err := d.StringZC()
				if err != nil {
					return err
				}
				keys = append(keys, k)
				return nil
			}
			return d.Skip(t)
		})
	})
	if err != nil {
		return nil, err
	}
	s.acquire()
	defer s.release()
	act, _ := trace.Start(sc, s.name, "multidelete")
	ok := make([]bool, len(keys))
	for i, k := range keys {
		ok[i] = s.store.Delete(k)
	}
	act.AnnotateInt("batch.keys", int64(len(keys)))
	act.End()
	e := wire.GetEncoder()
	e.PackedBools(1, ok)
	resp := append([]byte(nil), e.Bytes()...)
	wire.PutEncoder(e)
	return resp, nil
}
