// Package remotecache implements the remote lookaside cache tier of the
// study (§2.4, Figure 1b): a memcached/Redis-style server fronted by the
// RPC layer, plus a client that shards keys across cache nodes with
// consistent hashing. Every hit pays an RPC round trip and value
// (de)serialization — the CPU the linked cache architecture eliminates.
package remotecache

import "cachecost/internal/wire"

// GetRequest asks for one key.
type GetRequest struct {
	Key string
}

// MarshalWire implements wire.Marshaler.
func (r *GetRequest) MarshalWire(e *wire.Encoder) { e.String(1, r.Key) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *GetRequest) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		if f == 1 {
			r.Key, err = d.String()
			return err
		}
		return d.Skip(t)
	})
}

// GetResponse returns the value, if present.
type GetResponse struct {
	Found bool
	Value []byte
}

// MarshalWire implements wire.Marshaler.
func (r *GetResponse) MarshalWire(e *wire.Encoder) {
	e.Bool(1, r.Found)
	e.BytesField(2, r.Value)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *GetResponse) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		switch f {
		case 1:
			r.Found, err = d.Bool()
		case 2:
			var b []byte
			b, err = d.Bytes()
			r.Value = append([]byte(nil), b...)
		default:
			err = d.Skip(t)
		}
		return err
	})
}

// SetRequest stores a value with an optional TTL in milliseconds.
type SetRequest struct {
	Key   string
	Value []byte
	TTLms int64
}

// MarshalWire implements wire.Marshaler.
func (r *SetRequest) MarshalWire(e *wire.Encoder) {
	e.String(1, r.Key)
	e.BytesField(2, r.Value)
	e.Int64(3, r.TTLms)
}

// UnmarshalWire implements wire.Unmarshaler.
func (r *SetRequest) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		switch f {
		case 1:
			r.Key, err = d.String()
		case 2:
			var b []byte
			b, err = d.Bytes()
			r.Value = append([]byte(nil), b...)
		case 3:
			r.TTLms, err = d.Int64()
		default:
			err = d.Skip(t)
		}
		return err
	})
}

// DeleteRequest removes a key.
type DeleteRequest struct {
	Key string
}

// MarshalWire implements wire.Marshaler.
func (r *DeleteRequest) MarshalWire(e *wire.Encoder) { e.String(1, r.Key) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *DeleteRequest) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		if f == 1 {
			r.Key, err = d.String()
			return err
		}
		return d.Skip(t)
	})
}

// Ack is the generic success reply for writes.
type Ack struct {
	OK bool
}

// MarshalWire implements wire.Marshaler.
func (r *Ack) MarshalWire(e *wire.Encoder) { e.Bool(1, r.OK) }

// UnmarshalWire implements wire.Unmarshaler.
func (r *Ack) UnmarshalWire(d *wire.Decoder) error {
	return decodeFields(d, func(f uint32, t wire.Type) (err error) {
		if f == 1 {
			r.OK, err = d.Bool()
			return err
		}
		return d.Skip(t)
	})
}

// decodeFields drives a field-by-field decode loop.
func decodeFields(d *wire.Decoder, fn func(f uint32, t wire.Type) error) error {
	for !d.Done() {
		f, t, err := d.Next()
		if err != nil {
			return err
		}
		if err := fn(f, t); err != nil {
			return err
		}
	}
	return nil
}
