package remotecache

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cachecost/internal/rpc"
	"cachecost/internal/wire"
)

func roundTrip(in wire.Marshaler, out wire.Unmarshaler) error {
	return wire.Unmarshal(wire.Marshal(in), out)
}

// brokenConn fails every call, modelling an unreachable cache node.
type brokenConn struct{}

func (brokenConn) Call(string, []byte) ([]byte, error) {
	return nil, errors.New("node unreachable")
}
func (brokenConn) Close() error { return nil }

func TestMultiGetSetDeleteSingleNode(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))

	keys := []string{"a", "b", "c", "d"}
	vals := [][]byte{[]byte("va"), []byte("vb"), []byte("vc"), []byte("vd")}
	if err := c.MultiSetTTL(keys, vals, 0); err != nil {
		t.Fatal(err)
	}

	// Mixed batch: two present, one absent, one present.
	got, found, err := c.MultiGet([]string{"a", "missing", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	wantFound := []bool{true, false, true, true}
	wantVals := []string{"va", "", "vc", "vd"}
	for i := range wantFound {
		if found[i] != wantFound[i] || string(got[i]) != wantVals[i] {
			t.Fatalf("slot %d = %q/%v, want %q/%v", i, got[i], found[i], wantVals[i], wantFound[i])
		}
	}

	if err := c.MultiDelete([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	_, found, err = c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if found[0] || found[1] || !found[2] || !found[3] {
		t.Fatalf("after delete: found = %v", found)
	}
}

func TestMultiGetEmptyBatch(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
	vals, found, err := c.MultiGet(nil)
	if err != nil || len(vals) != 0 || len(found) != 0 {
		t.Fatalf("empty batch = %v %v %v", vals, found, err)
	}
	if err := c.MultiSetTTL(nil, nil, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.MultiDelete(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMultiSetLengthMismatch(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
	if err := c.MultiSetTTL([]string{"a", "b"}, [][]byte{[]byte("x")}, 0); err == nil {
		t.Fatal("mismatched keys/values must error")
	}
}

func TestMultiGetFansOutAcrossNodes(t *testing.T) {
	nodes := map[string]*Server{}
	conns := map[string]rpc.Conn{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("cache%d", i)
		nodes[name] = newNode(t, nil, 1<<20)
		conns[name] = rpc.NewDirect(nodes[name].RPCServer())
	}
	c := NewClient(conns)

	const n = 90
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	if err := c.MultiSetTTL(keys, vals, 0); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !found[i] || string(got[i]) != string(vals[i]) {
			t.Fatalf("key %s = %q/%v", keys[i], got[i], found[i])
		}
	}
	// The batch must actually have sharded: every node owns some keys.
	for name, srv := range nodes {
		if srv.UsedBytes() == 0 {
			t.Fatalf("node %s received no keys", name)
		}
	}
	// Round trips must match the scalar path: MultiDelete existing keys.
	if err := c.MultiDelete(keys); err != nil {
		t.Fatal(err)
	}
	for name, srv := range nodes {
		if srv.UsedBytes() != 0 {
			t.Fatalf("node %s still holds bytes after MultiDelete", name)
		}
	}
}

// Partial-result semantics: with one of two nodes unreachable, a
// degraded client returns the reachable node's hits, reads the dead
// node's keys as misses, and counts ONE demotion per failed node RPC.
func TestMultiGetPartialResultsDegraded(t *testing.T) {
	live := newNode(t, nil, 1<<20)
	conns := map[string]rpc.Conn{
		"cache0": rpc.NewDirect(live.RPCServer()),
		"cache1": brokenConn{},
	}
	c := NewClient(conns)

	// Find keys on each side of the ring split.
	var liveKeys, deadKeys []string
	for i := 0; len(liveKeys) < 3 || len(deadKeys) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.ring.Owner(k) == "cache0" {
			liveKeys = append(liveKeys, k)
		} else {
			deadKeys = append(deadKeys, k)
		}
	}
	liveKeys, deadKeys = liveKeys[:3], deadKeys[:3]
	for _, k := range liveKeys {
		live.store.Put(k, []byte("v-"+k))
	}

	batch := []string{liveKeys[0], deadKeys[0], liveKeys[1], deadKeys[1], liveKeys[2], deadKeys[2]}

	// Strict mode: the dead node fails the whole batch.
	if _, _, err := c.MultiGet(batch); err == nil {
		t.Fatal("strict client must propagate the node failure")
	}

	// Degraded mode: partial results.
	c.Degrade(nil)
	vals, found, err := c.MultiGet(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range batch {
		wantLive := i%2 == 0
		if found[i] != wantLive {
			t.Fatalf("slot %d (%s): found=%v, want %v", i, k, found[i], wantLive)
		}
		if wantLive && string(vals[i]) != "v-"+k {
			t.Fatalf("slot %d (%s) = %q", i, k, vals[i])
		}
	}
	if got := c.Degraded(); got != 1 {
		t.Fatalf("Degraded = %d, want 1 (one failed node RPC, not one per key)", got)
	}

	// Degraded MultiSet/MultiDelete to the dead node: silent no-ops,
	// one demotion each.
	if err := c.MultiSetTTL(deadKeys, [][]byte{[]byte("x"), []byte("y"), []byte("z")}, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.MultiDelete(deadKeys); err != nil {
		t.Fatal(err)
	}
	if got := c.Degraded(); got != 3 {
		t.Fatalf("Degraded = %d, want 3", got)
	}
}

func TestMultiSetTTLExpires(t *testing.T) {
	srv := newNode(t, nil, 1<<20)
	c := NewSingleClient(rpc.NewDirect(srv.RPCServer()))
	if err := c.MultiSetTTL([]string{"a", "b"}, [][]byte{[]byte("1"), []byte("2")}, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	_, found, err := c.MultiGet([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if found[0] || found[1] {
		t.Fatal("batched TTL entries should expire")
	}
}

func TestMultiMessagesRoundTrip(t *testing.T) {
	// The message structs must round-trip through the generic
	// Marshal/Unmarshal path (the client hot path encodes field-by-field;
	// this pins the struct codecs they must stay compatible with).
	reqIn := &MultiGetRequest{Keys: []string{"a", "", "c"}}
	var reqOut MultiGetRequest
	if err := roundTrip(reqIn, &reqOut); err != nil {
		t.Fatal(err)
	}
	if len(reqOut.Keys) != 3 || reqOut.Keys[0] != "a" || reqOut.Keys[1] != "" || reqOut.Keys[2] != "c" {
		t.Fatalf("keys = %q", reqOut.Keys)
	}

	respIn := &MultiGetResponse{Found: []bool{true, false, true}, Values: [][]byte{[]byte("x"), nil, []byte("z")}}
	var respOut MultiGetResponse
	if err := roundTrip(respIn, &respOut); err != nil {
		t.Fatal(err)
	}
	if len(respOut.Found) != 3 || !respOut.Found[0] || respOut.Found[1] || !respOut.Found[2] {
		t.Fatalf("found = %v", respOut.Found)
	}
	if len(respOut.Values) != 3 || string(respOut.Values[0]) != "x" || len(respOut.Values[1]) != 0 || string(respOut.Values[2]) != "z" {
		t.Fatalf("values = %q", respOut.Values)
	}

	setIn := &MultiSetRequest{Keys: []string{"k"}, Values: [][]byte{[]byte("v")}, TTLms: 1500}
	var setOut MultiSetRequest
	if err := roundTrip(setIn, &setOut); err != nil {
		t.Fatal(err)
	}
	if len(setOut.Keys) != 1 || setOut.Keys[0] != "k" || string(setOut.Values[0]) != "v" || setOut.TTLms != 1500 {
		t.Fatalf("set = %+v", setOut)
	}

	ackIn := &MultiAck{OK: []bool{false, true}}
	var ackOut MultiAck
	if err := roundTrip(ackIn, &ackOut); err != nil {
		t.Fatal(err)
	}
	if len(ackOut.OK) != 2 || ackOut.OK[0] || !ackOut.OK[1] {
		t.Fatalf("ack = %v", ackOut.OK)
	}

	delIn := &MultiDeleteRequest{Keys: []string{"x", "y"}}
	var delOut MultiDeleteRequest
	if err := roundTrip(delIn, &delOut); err != nil {
		t.Fatal(err)
	}
	if len(delOut.Keys) != 2 || delOut.Keys[0] != "x" || delOut.Keys[1] != "y" {
		t.Fatalf("del = %q", delOut.Keys)
	}
}
