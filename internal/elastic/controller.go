// Package elastic closes the provisioning loop the paper leaves open:
// §4 prices caches at a fixed size chosen offline, but real workloads
// breathe (diurnal swings) and lurch (flash crowds), so any fixed size
// is wrong most of the day. The controller here watches the live access
// stream through a windowed miss-ratio curve and continuously retunes
// two knobs against the same cost model the repository's meter bills —
//
//	cache bytes:  memory rent          vs  miss-driven storage cost
//	cache TTL:    refresh-load cost    vs  staleness exposure
//
// — stepping each toward the current cost minimum with hysteresis, so
// the priced memory follows demand instead of the worst case.
package elastic

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"cachecost/internal/cache"
	"cachecost/internal/meter"
	"cachecost/internal/telemetry"
)

// secondsPerMonth matches meter's normalization (30-day month), so a
// cost the controller estimates is commensurable with the bill the
// report prints.
const secondsPerMonth = 30 * 24 * 3600

// SizeTarget is a resizable cache tier. linkedcache.Cache,
// remotecache.Server and consistency.TTLCache all implement it.
type SizeTarget interface {
	Resize(bytes int64)
	Capacity() int64
	UsedBytes() int64
}

// TTLTarget is a cache whose freshness bound can be retuned live
// (consistency.TTLCache).
type TTLTarget interface {
	SetTTL(d time.Duration)
	TTL() time.Duration
}

// Curve is the slice of the miss-ratio curve the controller needs.
// *cache.WeightedMRC implements it.
type Curve interface {
	// MissRatio returns the fraction of accesses that would miss in an
	// LRU of the given byte capacity.
	MissRatio(cacheBytes int64) float64
	// Weight returns the total sample mass behind the curve; ticks
	// below Config.MinSamples are skipped as statistically empty.
	Weight() float64
}

// Config parameterizes a controller.
type Config struct {
	// Name labels telemetry and the /statusz section. Default "cache".
	Name string
	// Target is the tier being resized. Required.
	Target SizeTarget
	// TTL, when non-nil, is additionally retuned (needs
	// StaleUSDPerReadSec > 0 to have a staleness cost to trade).
	TTL TTLTarget

	// Prices converts bytes to monthly rent.
	Prices meter.PriceBook
	// Replicas is how many servers replicate the target's memory (the
	// linked tier deploys once per app server); the rent is
	// bytes × Replicas. Default 1.
	Replicas int
	// MissCostUSD is the marginal dollar cost of one cache miss — the
	// storage work a hit would have avoided. Figures estimate it from a
	// measured run: storage component cost / monthly storage contacts.
	MissCostUSD float64
	// StaleUSDPerReadSec prices one read-second of staleness exposure
	// (a read served from an entry that is t seconds old costs t times
	// this). Zero disables TTL tuning.
	StaleUSDPerReadSec float64

	// MinBytes/MaxBytes clamp the size the controller may choose.
	// Defaults: 1 MiB and 4 GiB.
	MinBytes, MaxBytes int64
	// MinTTL/MaxTTL clamp the freshness bound. Defaults 10ms and 10m.
	MinTTL, MaxTTL time.Duration
	// StepFrac is the multiplicative step per tick (0.15 default): each
	// tick moves a knob by at most ±StepFrac of its current value.
	StepFrac float64
	// Hysteresis is the minimum relative cost improvement required to
	// move at all (0.02 default); below it the controller holds, which
	// is what keeps it from oscillating around a flat minimum.
	Hysteresis float64

	// Window and Decay parameterize the windowed MRC (accesses per
	// generation, previous-generation weight). Defaults 8192 and 0.5.
	Window int
	Decay  float64
	// MinSamples is the curve weight below which a tick holds
	// everything (default 256).
	MinSamples float64

	// Registry, when set, receives elastic.* counters/gauges and a
	// /statusz section.
	Registry *telemetry.Registry

	// CurveFn overrides the observed curve (tests). Nil uses the
	// windowed analyzer fed by Observe.
	CurveFn func() Curve
	// DemandQPS overrides the measured request rate (tests). Nil
	// derives it from Observe counts and the clock.
	DemandQPS func() float64
	// DistinctFn overrides the active-key estimate (tests).
	DistinctFn func() int
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Decision is the outcome of one Tick, for figures and tests.
type Decision struct {
	Ticked      bool // false when held for insufficient samples
	QPS         float64
	MissRatio   float64 // at the chosen size
	TargetBytes int64
	Resized     bool
	TTL         time.Duration
	Retuned     bool
	// EstMonthlyUSD is the controller's own cost estimate at the chosen
	// operating point (memory rent + miss cost [+ refresh + staleness]).
	EstMonthlyUSD float64
}

// Controller is the elastic provisioning loop. Observe feeds it the
// access stream (cheap, amortized O(log n)); Tick — called on the
// experiment driver's op clock or any periodic timer — moves the knobs.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	win      *cache.WindowedAnalyzer
	ops      int64
	lastTick time.Time
	last     Decision
	nResizes int64
	nRetunes int64

	ticks, holds, resizes, retunes *telemetry.Counter
	gTarget, gActual, gTTL, gMiss  *telemetry.Gauge
	gCost, gQPS                    *telemetry.Gauge
}

// New builds a controller. The target's current capacity is the
// starting operating point.
func New(cfg Config) *Controller {
	if cfg.Name == "" {
		cfg.Name = "cache"
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.MinBytes <= 0 {
		cfg.MinBytes = 1 << 20
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 4 << 30
	}
	if cfg.MinTTL <= 0 {
		cfg.MinTTL = 10 * time.Millisecond
	}
	if cfg.MaxTTL <= 0 {
		cfg.MaxTTL = 10 * time.Minute
	}
	if cfg.StepFrac <= 0 {
		cfg.StepFrac = 0.15
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.02
	}
	if cfg.Window <= 0 {
		cfg.Window = 8192
	}
	if cfg.Decay <= 0 {
		cfg.Decay = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 256
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Controller{
		cfg: cfg,
		win: cache.NewWindowedAnalyzer(cfg.Window, cfg.Decay),
	}
	c.lastTick = cfg.Clock()
	c.last.TargetBytes = cfg.Target.Capacity()
	if cfg.TTL != nil {
		c.last.TTL = cfg.TTL.TTL()
	}
	if reg := cfg.Registry; reg != nil {
		lbl := telemetry.L("tier", cfg.Name)
		c.ticks = reg.Counter("elastic.ticks", lbl)
		c.holds = reg.Counter("elastic.holds", lbl)
		c.resizes = reg.Counter("elastic.resizes", lbl)
		c.retunes = reg.Counter("elastic.ttl_retunes", lbl)
		c.gTarget = reg.Gauge("elastic.target_bytes", lbl)
		c.gActual = reg.Gauge("elastic.actual_bytes", lbl)
		c.gTTL = reg.Gauge("elastic.ttl_ms", lbl)
		c.gMiss = reg.Gauge("elastic.miss_ratio_ppm", lbl)
		c.gCost = reg.Gauge("elastic.est_cost_cents_month", lbl)
		c.gQPS = reg.Gauge("elastic.qps", lbl)
		c.gTarget.Set(c.last.TargetBytes)
		c.gActual.Set(cfg.Target.Capacity())
		if cfg.TTL != nil {
			c.gTTL.Set(c.last.TTL.Milliseconds())
		}
		reg.RegisterStatus("elastic."+cfg.Name, c.statusz)
	}
	return c
}

// Observe records one cache access (key and its budgeted bytes). Safe
// for concurrent use.
func (c *Controller) Observe(key string, size int64) {
	c.mu.Lock()
	c.win.Access(key, size)
	c.ops++
	c.mu.Unlock()
}

// TargetBytes returns the size the controller last chose (or started
// from).
func (c *Controller) TargetBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last.TargetBytes
}

// Resizes returns how many times the controller has moved the size knob.
func (c *Controller) Resizes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nResizes
}

// Retunes returns how many times the controller has moved the TTL knob.
func (c *Controller) Retunes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nRetunes
}

// Last returns the most recent decision.
func (c *Controller) Last() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Tick evaluates the live curve and moves the size and TTL knobs one
// bounded step toward the cost minimum. Call it periodically; each call
// is cheap (one curve freeze + a handful of cost evaluations).
func (c *Controller) Tick() Decision {
	c.mu.Lock()
	defer c.mu.Unlock()

	now := c.cfg.Clock()
	elapsed := now.Sub(c.lastTick).Seconds()
	c.lastTick = now

	var curve Curve
	if c.cfg.CurveFn != nil {
		curve = c.cfg.CurveFn()
	} else {
		curve = c.win.Curve()
	}
	qps := 0.0
	if c.cfg.DemandQPS != nil {
		qps = c.cfg.DemandQPS()
	} else if elapsed > 0 {
		qps = float64(c.ops) / elapsed
	}
	c.ops = 0

	d := Decision{QPS: qps, TargetBytes: c.last.TargetBytes, TTL: c.last.TTL}
	if curve.Weight() < c.cfg.MinSamples || qps <= 0 {
		if c.holds != nil {
			c.holds.Inc()
		}
		c.last = d
		return d
	}
	d.Ticked = true

	// --- size step: memory rent vs miss-driven storage cost ---
	cur := c.cfg.Target.Capacity()
	costAt := func(s int64) float64 {
		rent := c.cfg.Prices.MemCost(s * int64(c.cfg.Replicas))
		miss := qps * curve.MissRatio(s) * secondsPerMonth * c.cfg.MissCostUSD
		return rent + miss
	}
	best, bestCost := cur, costAt(cur)
	for _, cand := range []int64{
		clamp(int64(float64(cur)*(1-c.cfg.StepFrac)), c.cfg.MinBytes, c.cfg.MaxBytes),
		clamp(int64(float64(cur)*(1+c.cfg.StepFrac)), c.cfg.MinBytes, c.cfg.MaxBytes),
	} {
		if cand == cur {
			continue
		}
		if cc := costAt(cand); cc < bestCost {
			best, bestCost = cand, cc
		}
	}
	// The hysteresis band scales with the rent at the current size — the
	// knob's own cost component — not with total cost: a workload whose
	// compulsory misses dwarf the rent would otherwise pin the size
	// forever, because no resize can touch the compulsory term.
	if best != cur && bestCost < costAt(cur)-c.cfg.Hysteresis*c.cfg.Prices.MemCost(cur*int64(c.cfg.Replicas)) {
		c.cfg.Target.Resize(best)
		d.Resized = true
		c.nResizes++
		if c.resizes != nil {
			c.resizes.Inc()
		}
	} else {
		best, bestCost = cur, costAt(cur)
	}
	d.TargetBytes = best
	d.MissRatio = curve.MissRatio(best)
	d.EstMonthlyUSD = bestCost

	// --- TTL step: refresh-load cost vs staleness exposure ---
	if c.cfg.TTL != nil && c.cfg.StaleUSDPerReadSec > 0 {
		distinct := 0
		if c.cfg.DistinctFn != nil {
			distinct = c.cfg.DistinctFn()
		} else {
			distinct = c.win.DistinctKeys()
		}
		hit := 1 - d.MissRatio
		curTTL := c.cfg.TTL.TTL()
		ttlCost := func(t time.Duration) float64 {
			sec := t.Seconds()
			// The cached population refreshes roughly once per TTL;
			// each refresh is a storage load. Meanwhile every hit is on
			// average t/2 old.
			refresh := float64(distinct) / sec * secondsPerMonth * c.cfg.MissCostUSD
			stale := qps * hit * secondsPerMonth * (sec / 2) * c.cfg.StaleUSDPerReadSec
			return refresh + stale
		}
		bt, btCost := curTTL, ttlCost(curTTL)
		for _, cand := range []time.Duration{
			clampD(time.Duration(float64(curTTL)*(1-c.cfg.StepFrac)), c.cfg.MinTTL, c.cfg.MaxTTL),
			clampD(time.Duration(float64(curTTL)*(1+c.cfg.StepFrac)), c.cfg.MinTTL, c.cfg.MaxTTL),
		} {
			if cand == curTTL {
				continue
			}
			if cc := ttlCost(cand); cc < btCost {
				bt, btCost = cand, cc
			}
		}
		if bt != curTTL && btCost < ttlCost(curTTL)*(1-c.cfg.Hysteresis) {
			c.cfg.TTL.SetTTL(bt)
			d.Retuned = true
			c.nRetunes++
			if c.retunes != nil {
				c.retunes.Inc()
			}
		} else {
			bt = curTTL
		}
		d.TTL = bt
		d.EstMonthlyUSD += ttlCost(bt)
	}

	if c.ticks != nil {
		c.ticks.Inc()
		c.gTarget.Set(d.TargetBytes)
		c.gActual.Set(c.cfg.Target.Capacity())
		c.gMiss.Set(int64(d.MissRatio * 1e6))
		c.gCost.Set(int64(d.EstMonthlyUSD * 100))
		c.gQPS.Set(int64(qps))
		if c.cfg.TTL != nil {
			c.gTTL.Set(d.TTL.Milliseconds())
		}
	}
	c.last = d
	return d
}

func (c *Controller) statusz(w io.Writer) {
	c.mu.Lock()
	d := c.last
	actual := c.cfg.Target.Capacity()
	used := c.cfg.Target.UsedBytes()
	c.mu.Unlock()
	fmt.Fprintf(w, "tier: %s\n", c.cfg.Name)
	fmt.Fprintf(w, "target: %s  actual: %s  used: %s\n",
		fmtBytes(d.TargetBytes), fmtBytes(actual), fmtBytes(used))
	if c.cfg.TTL != nil {
		fmt.Fprintf(w, "ttl: %v\n", d.TTL)
	}
	fmt.Fprintf(w, "qps: %.0f  miss-ratio: %.3f  est-cost: $%.2f/mo\n",
		d.QPS, d.MissRatio, d.EstMonthlyUSD)
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampD(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// OptimalBytes returns the analytic cost minimum for an exponential
// miss-ratio curve mr(s) = exp(-s/a) under the controller's cost model
// — the closed form the convergence tests check against:
//
//	s* = a · ln(qps · missUSD · secondsPerMonth / (a · memUSDPerByte))
func OptimalBytes(a, qps, missUSD, memGBMonth float64) float64 {
	perByte := memGBMonth / (1 << 30)
	return a * math.Log(qps*missUSD*secondsPerMonth/(a*perByte))
}

// OptimalTTL returns the analytic minimum of the TTL cost model:
//
//	t* = sqrt(2 · distinct · missUSD / (qps · hit · staleUSD))
func OptimalTTL(distinct int, qps, hit, missUSD, staleUSD float64) time.Duration {
	t := math.Sqrt(2 * float64(distinct) * missUSD / (qps * hit * staleUSD))
	return time.Duration(t * float64(time.Second))
}
