package elastic

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"cachecost/internal/linkedcache"
	"cachecost/internal/meter"
	"cachecost/internal/telemetry"
)

type fakeSize struct{ capacity int64 }

func (f *fakeSize) Resize(b int64) { f.capacity = b }
func (f *fakeSize) Capacity() int64 {
	return f.capacity
}
func (f *fakeSize) UsedBytes() int64 { return f.capacity / 2 }

type fakeTTL struct{ ttl time.Duration }

func (f *fakeTTL) SetTTL(d time.Duration) { f.ttl = d }
func (f *fakeTTL) TTL() time.Duration     { return f.ttl }

// expCurve is the analytic test workload: mr(s) = exp(-s/a), whose cost
// minimum OptimalBytes gives in closed form.
type expCurve struct{ a float64 }

func (c expCurve) MissRatio(s int64) float64 { return math.Exp(-float64(s) / c.a) }
func (c expCurve) Weight() float64           { return 1e9 }

// run ticks the controller n times and returns the trail of targets.
func run(c *Controller, n int) []int64 {
	trail := make([]int64, n)
	for i := range trail {
		trail[i] = c.Tick().TargetBytes
	}
	return trail
}

// The size loop must settle at the analytic optimum — within one
// multiplicative step, from both directions — and then hold: hysteresis
// must suppress oscillation around the (locally flat) minimum.
func TestSizeConvergesToAnalyticOptimum(t *testing.T) {
	const (
		a       = float64(64 << 20) // curve scale: 64 MiB
		qps     = 1000.0
		missUSD = 1e-6
		step    = 0.15
	)
	prices := meter.GCP.WithMemoryMultiplier(40)
	want := OptimalBytes(a, qps, missUSD, prices.MemGBMonth)
	if want < float64(32<<20) || want > float64(2<<30) {
		t.Fatalf("test setup: optimum %.0f outside the start bracket", want)
	}

	for _, start := range []int64{32 << 20, 2 << 30} {
		tgt := &fakeSize{capacity: start}
		c := New(Config{
			Target:      tgt,
			Prices:      prices,
			MissCostUSD: missUSD,
			StepFrac:    step,
			CurveFn:     func() Curve { return expCurve{a: a} },
			DemandQPS:   func() float64 { return qps },
		})
		trail := run(c, 200)

		got := float64(trail[len(trail)-1])
		if r := got / want; r < 1-2*step || r > 1+2*step {
			t.Errorf("start=%d: settled at %.0f, want within 2 steps of %.0f (ratio %.2f)",
				start, got, want, r)
		}
		if tgt.Capacity() != trail[len(trail)-1] {
			t.Errorf("start=%d: target capacity %d diverged from decision %d",
				start, tgt.Capacity(), trail[len(trail)-1])
		}
		// Settled means settled: the last 50 ticks may not oscillate.
		settled := trail[len(trail)-50:]
		for _, v := range settled {
			if v != settled[0] {
				t.Errorf("start=%d: oscillation after settling: %v", start, uniq(settled))
				break
			}
		}
	}
}

// A perturbation smaller than the hysteresis band must not move the
// knob at all.
func TestHysteresisHoldsFlatMinimum(t *testing.T) {
	const a, qps, missUSD = float64(64 << 20), 1000.0, 1e-6
	prices := meter.GCP.WithMemoryMultiplier(40)
	opt := int64(OptimalBytes(a, qps, missUSD, prices.MemGBMonth))

	wobble := 1.0
	tgt := &fakeSize{capacity: opt}
	c := New(Config{
		Target:      tgt,
		Prices:      prices,
		MissCostUSD: missUSD,
		Hysteresis:  0.05,
		CurveFn:     func() Curve { return expCurve{a: a} },
		DemandQPS:   func() float64 { return qps * wobble },
	})
	for i := 0; i < 100; i++ {
		wobble = 1 + 0.02*math.Sin(float64(i)) // ±2% demand noise
		if d := c.Tick(); d.Resized {
			t.Fatalf("tick %d: resized to %d under sub-hysteresis noise (start %d)",
				i, d.TargetBytes, opt)
		}
	}
}

// The TTL loop must settle at its closed-form optimum
// t* = sqrt(2·K·c / (R·hit·p_s)).
func TestTTLConvergesToAnalyticOptimum(t *testing.T) {
	const (
		qps      = 1000.0
		missUSD  = 1e-6
		staleUSD = 1e-9
		distinct = 10000
		step     = 0.15
	)
	prices := meter.GCP.WithMemoryMultiplier(40)
	for _, start := range []time.Duration{time.Second, 10 * time.Minute} {
		ttl := &fakeTTL{ttl: start}
		c := New(Config{
			Target:             &fakeSize{capacity: 1 << 30},
			TTL:                ttl,
			Prices:             prices,
			MissCostUSD:        missUSD,
			StaleUSDPerReadSec: staleUSD,
			StepFrac:           step,
			MaxTTL:             time.Hour,
			CurveFn:            func() Curve { return expCurve{a: float64(64 << 20)} },
			DemandQPS:          func() float64 { return qps },
			DistinctFn:         func() int { return distinct },
		})
		var last Decision
		for i := 0; i < 200; i++ {
			last = c.Tick()
		}
		want := OptimalTTL(distinct, qps, 1-last.MissRatio, missUSD, staleUSD)
		if r := float64(last.TTL) / float64(want); r < 1-2*step || r > 1+2*step {
			t.Errorf("start=%v: TTL settled at %v, want within 2 steps of %v (ratio %.2f)",
				start, last.TTL, want, r)
		}
		if ttl.TTL() != last.TTL {
			t.Errorf("start=%v: target TTL %v diverged from decision %v", start, ttl.TTL(), last.TTL)
		}
	}
}

// Too few samples must hold everything — no resize off statistical
// noise right after startup or a telemetry reset.
func TestInsufficientSamplesHolds(t *testing.T) {
	tgt := &fakeSize{capacity: 256 << 20}
	c := New(Config{
		Target:      tgt,
		Prices:      meter.GCP,
		MissCostUSD: 1e-6,
	})
	for i := 0; i < 10; i++ {
		c.Observe(fmt.Sprintf("k%d", i), 100) // far below MinSamples
	}
	if d := c.Tick(); d.Ticked || d.Resized {
		t.Fatalf("tick on %d samples must hold, got %+v", 10, d)
	}
	if tgt.Capacity() != 256<<20 {
		t.Fatalf("capacity moved to %d on insufficient samples", tgt.Capacity())
	}
}

// End to end against a real linked cache: after every tick the meter's
// priced memory and the elastic.target_bytes gauge equal the
// controller's live target — the bill follows the knob, step for step.
func TestControllerKeepsMeterAndGaugeInSync(t *testing.T) {
	const replicas = 3
	m := meter.NewMeter()
	reg := telemetry.NewRegistry()
	lc := linkedcache.New[string](linkedcache.Config{
		CapacityBytes: 512 << 20,
		Meter:         m,
		Name:          "app.cache",
	}, func(k, v string) int64 { return int64(len(k) + len(v)) })
	lc.SetBilledReplicas(replicas)

	ctrl := New(Config{
		Name:        "app.cache",
		Target:      lc,
		Prices:      meter.GCP.WithMemoryMultiplier(40),
		Replicas:    replicas,
		MissCostUSD: 1e-6,
		Window:      2000,
		MinSamples:  100,
		Registry:    reg,
	})

	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.2, 1, 5000)
	gauge := reg.Gauge("elastic.target_bytes", telemetry.L("tier", "app.cache"))
	comp := m.Component("app.cache")
	resized := false
	for tick := 0; tick < 50; tick++ {
		for i := 0; i < 500; i++ {
			ctrl.Observe(fmt.Sprintf("key-%d", z.Uint64()), 4096)
		}
		d := ctrl.Tick()
		if d.Resized {
			resized = true
		}
		if lc.Capacity() != d.TargetBytes {
			t.Fatalf("tick %d: cache capacity %d != decision target %d", tick, lc.Capacity(), d.TargetBytes)
		}
		if got, want := comp.MemBytes(), d.TargetBytes*replicas; got != want {
			t.Fatalf("tick %d: metered memory %d != target %d × %d replicas", tick, got, d.TargetBytes, replicas)
		}
		if gauge.Value() != d.TargetBytes {
			t.Fatalf("tick %d: elastic.target_bytes gauge %d != target %d", tick, gauge.Value(), d.TargetBytes)
		}
	}
	if !resized {
		t.Fatal("a 512 MiB budget over a ~20 MB working set must shrink at least once")
	}
}

func uniq(vs []int64) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
