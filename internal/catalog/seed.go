package catalog

import (
	"fmt"
	"math/rand"

	"cachecost/internal/storage"
	"cachecost/internal/storage/sql"
	"cachecost/internal/wire"
	"cachecost/internal/workload"
)

// Securable-ID spaces: grants can attach to a table, schema or catalog;
// one grants table covers all three levels with disjoint id ranges.
const (
	schemaIDBase  = 1_000_000_000
	catalogIDBase = 2_000_000_000
)

// DDL is the normalized governance schema (the production shape).
var DDL = []string{
	`CREATE TABLE catalogs (id INT PRIMARY KEY, name TEXT, owner_name TEXT)`,
	`CREATE TABLE schemas (id INT PRIMARY KEY, name TEXT, catalog_id INT, owner_name TEXT)`,
	`CREATE TABLE tables (id INT PRIMARY KEY, name TEXT, schema_id INT, owner_name TEXT, props BLOB, stats BLOB)`,
	`CREATE TABLE principals (id INT PRIMARY KEY, name TEXT)`,
	`CREATE TABLE grants (id INT PRIMARY KEY, securable_id INT, principal_id INT, privilege TEXT)`,
	`CREATE INDEX idx_grants_securable ON grants (securable_id)`,
	`CREATE TABLE constraints (id INT PRIMARY KEY, table_id INT, name TEXT, kind TEXT, expr TEXT)`,
	`CREATE INDEX idx_constraints_table ON constraints (table_id)`,
	`CREATE TABLE lineage (id INT PRIMARY KEY, target_id INT, upstream_id INT, kind TEXT)`,
	`CREATE INDEX idx_lineage_target ON lineage (target_id)`,
	`CREATE TABLE tables_denorm (id INT PRIMARY KEY, obj BLOB)`,
}

// SeedConfig controls population size and which variants to materialize.
type SeedConfig struct {
	// Tables is the number of governed tables. Default 1000.
	Tables int
	// Seed drives the deterministic metadata generator. Default 1.
	Seed int64
	// Normalized seeds the production ER schema (Unity Catalog-Object).
	// Denormalized seeds tables_denorm (Unity Catalog-KV). Both default
	// true; disable one to halve the storage footprint of an experiment
	// that only reads the other.
	Normalized, Denormalized bool
	// StatsBytesOverride, when > 0, fixes every table's stats payload
	// size instead of drawing from the Figure 3a distribution.
	StatsBytesOverride int
}

func (c *SeedConfig) applyDefaults() {
	if c.Tables <= 0 {
		c.Tables = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if !c.Normalized && !c.Denormalized {
		c.Normalized = true
		c.Denormalized = true
	}
}

var privileges = []string{"SELECT", "MODIFY", "CREATE", "USAGE", "OWN"}
var constraintKinds = []string{"primary_key", "foreign_key", "check"}
var lineageKinds = []string{"table", "job", "notebook"}

// Seed populates node with a deterministic governance corpus: catalogs,
// schemas, tables, principals, grants at all three levels, constraints
// and lineage — plus, optionally, the denormalized materialized objects.
// Seeding bypasses metering (storage.Node.Bootstrap) so experiments only
// measure steady-state traffic.
func Seed(node *storage.Node, cfg SeedConfig) error {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	ddl := DDL
	if err := node.Bootstrap(ddl); err != nil {
		return err
	}

	nPrincipals := 100
	nSchemas := cfg.Tables/20 + 1
	nCatalogs := nSchemas/10 + 1

	// Principals.
	batch := newBatcher(node, "principals", []string{"id", "name"})
	for i := 0; i < nPrincipals; i++ {
		if err := batch.add(sql.Int64(int64(i)), sql.Text(principalName(i))); err != nil {
			return err
		}
	}
	if err := batch.flush(); err != nil {
		return err
	}

	grantID := int64(0)
	grantBatch := newBatcher(node, "grants", []string{"id", "securable_id", "principal_id", "privilege"})
	addGrant := func(securable int64, principal int, priv string) error {
		grantID++
		return grantBatch.add(sql.Int64(grantID), sql.Int64(securable),
			sql.Int64(int64(principal)), sql.Text(priv))
	}

	// Catalogs. Grants made at catalog level inherit downward; keep them
	// in memory so denormalized objects can embed the resolved view.
	catGrants := make(map[int64][]Grant)
	catBatch := newBatcher(node, "catalogs", []string{"id", "name", "owner_name"})
	for i := 0; i < nCatalogs; i++ {
		owner := rng.Intn(nPrincipals)
		if err := catBatch.add(sql.Int64(int64(i)), sql.Text(fmt.Sprintf("catalog_%d", i)),
			sql.Text(principalName(owner))); err != nil {
			return err
		}
		for g := 0; g < 1+rng.Intn(2); g++ {
			p := rng.Intn(nPrincipals)
			priv := privileges[rng.Intn(len(privileges))]
			catGrants[int64(i)] = append(catGrants[int64(i)],
				Grant{Principal: principalName(p), Privilege: priv, Source: "catalog"})
			if err := addGrant(catalogIDBase+int64(i), p, priv); err != nil {
				return err
			}
		}
	}
	if err := catBatch.flush(); err != nil {
		return err
	}

	// Schemas.
	schGrants := make(map[int64][]Grant)
	schBatch := newBatcher(node, "schemas", []string{"id", "name", "catalog_id", "owner_name"})
	for i := 0; i < nSchemas; i++ {
		owner := rng.Intn(nPrincipals)
		if err := schBatch.add(sql.Int64(int64(i)), sql.Text(fmt.Sprintf("schema_%d", i)),
			sql.Int64(int64(i%nCatalogs)), sql.Text(principalName(owner))); err != nil {
			return err
		}
		for g := 0; g < 1+rng.Intn(2); g++ {
			p := rng.Intn(nPrincipals)
			priv := privileges[rng.Intn(len(privileges))]
			schGrants[int64(i)] = append(schGrants[int64(i)],
				Grant{Principal: principalName(p), Privilege: priv, Source: "schema"})
			if err := addGrant(schemaIDBase+int64(i), p, priv); err != nil {
				return err
			}
		}
	}
	if err := schBatch.flush(); err != nil {
		return err
	}

	// Tables with constraints, lineage, properties and the stats payload.
	tblBatch := newBatcher(node, "tables", []string{"id", "name", "schema_id", "owner_name", "props", "stats"})
	conBatch := newBatcher(node, "constraints", []string{"id", "table_id", "name", "kind", "expr"})
	linBatch := newBatcher(node, "lineage", []string{"id", "target_id", "upstream_id", "kind"})
	denBatch := newBatcher(node, "tables_denorm", []string{"id", "obj"})
	conID, linID := int64(0), int64(0)

	for i := 0; i < cfg.Tables; i++ {
		id := int64(i)
		schemaID := int64(i % nSchemas)
		catalogID := schemaID % int64(nCatalogs)
		owner := rng.Intn(nPrincipals)

		props := map[string]string{
			"delta.minReaderVersion": "2",
			"owner_team":             fmt.Sprintf("team-%d", rng.Intn(20)),
			"retention_days":         fmt.Sprintf("%d", 7+rng.Intn(90)),
		}
		statsLen := cfg.StatsBytesOverride
		if statsLen <= 0 {
			statsLen = workload.UnityValueSize(i)
		}
		stats := statsPayload(id, statsLen)

		if cfg.Normalized {
			if err := tblBatch.add(
				sql.Int64(id), sql.Text(tableName(i)), sql.Int64(schemaID),
				sql.Text(principalName(owner)), sql.Blob(encodeProps(props)), sql.Blob(stats),
			); err != nil {
				return err
			}
		}

		nGrants := 2 + rng.Intn(4)
		grantRows := make([]Grant, 0, nGrants)
		for g := 0; g < nGrants; g++ {
			p := rng.Intn(nPrincipals)
			priv := privileges[rng.Intn(len(privileges))]
			grantRows = append(grantRows, Grant{Principal: principalName(p), Privilege: priv, Source: "table"})
			if cfg.Normalized {
				if err := addGrant(id, p, priv); err != nil {
					return err
				}
			}
		}

		nCons := rng.Intn(4)
		cons := make([]Constraint, 0, nCons)
		for c := 0; c < nCons; c++ {
			conID++
			k := constraintKinds[rng.Intn(len(constraintKinds))]
			con := Constraint{Name: fmt.Sprintf("con_%d", conID), Kind: k, Expr: "col_" + k}
			cons = append(cons, con)
			if cfg.Normalized {
				if err := conBatch.add(sql.Int64(conID), sql.Int64(id),
					sql.Text(con.Name), sql.Text(con.Kind), sql.Text(con.Expr)); err != nil {
					return err
				}
			}
		}

		nLin := rng.Intn(5)
		lineage := make([]LineageEdge, 0, nLin)
		for l := 0; l < nLin; l++ {
			linID++
			edge := LineageEdge{UpstreamID: int64(rng.Intn(cfg.Tables)), Kind: lineageKinds[rng.Intn(len(lineageKinds))]}
			lineage = append(lineage, edge)
			if cfg.Normalized {
				if err := linBatch.add(sql.Int64(linID), sql.Int64(id),
					sql.Int64(edge.UpstreamID), sql.Text(edge.Kind)); err != nil {
					return err
				}
			}
		}

		if cfg.Denormalized {
			// The materialized object: exactly what GetTableObject would
			// compose, with inheritance resolved at write time — which is
			// why the denormalized variant is hard to keep fresh in
			// production but cheap to read.
			allGrants := make([]Grant, 0, len(grantRows)+4)
			allGrants = append(allGrants, grantRows...)
			allGrants = append(allGrants, schGrants[schemaID]...)
			allGrants = append(allGrants, catGrants[catalogID]...)
			sortGrants(allGrants)
			obj := &TableInfo{
				ID:          id,
				Name:        tableName(i),
				FullName:    fmt.Sprintf("catalog_%d.schema_%d.%s", catalogID, schemaID, tableName(i)),
				Owner:       principalName(owner),
				SchemaName:  fmt.Sprintf("schema_%d", schemaID),
				CatalogName: fmt.Sprintf("catalog_%d", catalogID),
				Grants:      allGrants,
				Constraints: cons,
				Lineage:     lineage,
				Properties:  props,
				Stats:       stats,
			}
			if err := denBatch.add(sql.Int64(id), sql.Blob(wire.Marshal(obj))); err != nil {
				return err
			}
		}
	}
	for _, b := range []*batcher{tblBatch, grantBatch, conBatch, linBatch, denBatch} {
		if err := b.flush(); err != nil {
			return err
		}
	}
	return nil
}

func principalName(i int) string { return fmt.Sprintf("principal_%03d", i) }
func tableName(i int) string     { return fmt.Sprintf("table_%06d", i) }

// statsPayload builds a deterministic pseudo-random payload of n bytes.
func statsPayload(seed int64, n int) []byte {
	out := make([]byte, n)
	x := uint64(seed)*0x9e3779b97f4a7c15 + 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}

// encodeProps serializes a property map as repeated key/value fields.
func encodeProps(props map[string]string) []byte {
	e := wire.NewEncoder(64)
	keys := make([]string, 0, len(props))
	for k := range props {
		keys = append(keys, k)
	}
	// Sorted for determinism.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		e.String(1, k)
		e.String(2, props[k])
	}
	out := make([]byte, e.Len())
	copy(out, e.Bytes())
	return out
}

// decodeProps reverses encodeProps.
func decodeProps(buf []byte) (map[string]string, error) {
	d := wire.NewDecoder(buf)
	props := make(map[string]string)
	var pendingKey string
	for !d.Done() {
		f, t, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			if pendingKey, err = d.String(); err != nil {
				return nil, err
			}
		case 2:
			v, err := d.String()
			if err != nil {
				return nil, err
			}
			props[pendingKey] = v
		default:
			if err := d.Skip(t); err != nil {
				return nil, err
			}
		}
	}
	return props, nil
}

// batcher accumulates rows into multi-row INSERT statements executed via
// Bootstrap, keeping seeding fast (one parse per chunk).
type batcher struct {
	node    *storage.Node
	table   string
	cols    []string
	rows    int
	params  []sql.Value
	maxRows int
}

func newBatcher(node *storage.Node, table string, cols []string) *batcher {
	return &batcher{node: node, table: table, cols: cols, maxRows: 50}
}

func (b *batcher) add(vals ...sql.Value) error {
	if len(vals) != len(b.cols) {
		return fmt.Errorf("catalog: batcher %s: %d values for %d columns", b.table, len(vals), len(b.cols))
	}
	b.params = append(b.params, vals...)
	b.rows++
	if b.rows >= b.maxRows {
		return b.flush()
	}
	return nil
}

func (b *batcher) flush() error {
	if b.rows == 0 {
		return nil
	}
	stmt := insertStmt(b.table, b.cols, b.rows)
	err := b.node.BootstrapExec(stmt, b.params...)
	b.rows = 0
	b.params = b.params[:0]
	return err
}

func insertStmt(table string, cols []string, rows int) string {
	colList := ""
	for i, c := range cols {
		if i > 0 {
			colList += ", "
		}
		colList += c
	}
	row := "("
	for i := range cols {
		if i > 0 {
			row += ", "
		}
		row += "?"
	}
	row += ")"
	out := fmt.Sprintf("INSERT INTO %s (%s) VALUES ", table, colList)
	for r := 0; r < rows; r++ {
		if r > 0 {
			out += ", "
		}
		out += row
	}
	return out
}
