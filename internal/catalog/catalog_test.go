package catalog

import (
	"bytes"
	"testing"

	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/storage"
	"cachecost/internal/wire"
)

func seededApp(t *testing.T, m *meter.Meter, tables int) (*App, *storage.Node) {
	t.Helper()
	node := storage.NewNode(storage.Config{
		Replicas:        3,
		BlockCacheBytes: 32 << 20,
		Meter:           m,
	})
	if err := Seed(node, SeedConfig{Tables: tables, StatsBytesOverride: 2048}); err != nil {
		t.Fatal(err)
	}
	app := NewApp(storage.NewClient(rpc.NewDirect(node.Server())))
	return app, node
}

func TestGetTableObject(t *testing.T) {
	app, _ := seededApp(t, nil, 50)
	info, err := app.GetTableObject(7)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != 7 || info.Name != "table_000007" {
		t.Fatalf("info = %+v", info)
	}
	if info.SchemaName == "" || info.CatalogName == "" {
		t.Fatal("hierarchy names missing")
	}
	if info.FullName != info.CatalogName+"."+info.SchemaName+"."+info.Name {
		t.Fatalf("FullName = %q", info.FullName)
	}
	if len(info.Grants) < 2 {
		t.Fatalf("grants = %v", info.Grants)
	}
	if len(info.Properties) != 3 {
		t.Fatalf("properties = %v", info.Properties)
	}
	if len(info.Stats) != 2048 {
		t.Fatalf("stats len = %d", len(info.Stats))
	}
}

func TestInheritedGrantsPresent(t *testing.T) {
	app, _ := seededApp(t, nil, 50)
	sawInherited := false
	for id := int64(0); id < 20 && !sawInherited; id++ {
		info, err := app.GetTableObject(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range info.Grants {
			if g.Source == "schema" || g.Source == "catalog" {
				sawInherited = true
			}
		}
	}
	if !sawInherited {
		t.Fatal("inheritance resolution found no schema/catalog grants")
	}
}

func TestObjectAndKVViewsAgree(t *testing.T) {
	app, _ := seededApp(t, nil, 50)
	for _, id := range []int64{0, 3, 17, 49} {
		obj, err := app.GetTableObject(id)
		if err != nil {
			t.Fatal(err)
		}
		kv, err := app.GetTableKV(id)
		if err != nil {
			t.Fatal(err)
		}
		if obj.FullName != kv.FullName || obj.Owner != kv.Owner {
			t.Fatalf("id %d: identity mismatch %q/%q vs %q/%q",
				id, obj.FullName, obj.Owner, kv.FullName, kv.Owner)
		}
		if len(obj.Grants) != len(kv.Grants) {
			t.Fatalf("id %d: grants %d vs %d", id, len(obj.Grants), len(kv.Grants))
		}
		for i := range obj.Grants {
			if obj.Grants[i] != kv.Grants[i] {
				t.Fatalf("id %d grant %d: %+v vs %+v", id, i, obj.Grants[i], kv.Grants[i])
			}
		}
		if len(obj.Constraints) != len(kv.Constraints) || len(obj.Lineage) != len(kv.Lineage) {
			t.Fatalf("id %d: constraints/lineage mismatch", id)
		}
		if !bytes.Equal(obj.Stats, kv.Stats) {
			t.Fatalf("id %d: stats payload mismatch", id)
		}
	}
}

func TestObjectReadCostsMoreStorageCPUThanKV(t *testing.T) {
	// §5.4's mechanism: query amplification makes rich-object reads far
	// more expensive at the storage layer than denormalized lookups.
	m := meter.NewMeter()
	app, _ := seededApp(t, m, 50)
	m.Reset()
	for i := 0; i < 20; i++ {
		if _, err := app.GetTableObject(int64(i % 50)); err != nil {
			t.Fatal(err)
		}
	}
	objBusy := m.Component("storage.sql").Busy() + m.Component("storage.exec").Busy()

	m.Reset()
	for i := 0; i < 20; i++ {
		if _, err := app.GetTableKV(int64(i % 50)); err != nil {
			t.Fatal(err)
		}
	}
	kvBusy := m.Component("storage.sql").Busy() + m.Component("storage.exec").Busy()

	if objBusy < kvBusy*2 {
		t.Fatalf("object reads should amplify storage CPU: obj=%v kv=%v", objBusy, kvBusy)
	}
}

func TestTableInfoWireRoundtrip(t *testing.T) {
	in := &TableInfo{
		ID: 42, Name: "t", FullName: "c.s.t", Owner: "o",
		SchemaName: "s", CatalogName: "c",
		Grants:      []Grant{{Principal: "p1", Privilege: "SELECT", Source: "table"}},
		Constraints: []Constraint{{Name: "c1", Kind: "check", Expr: "x > 0"}},
		Lineage:     []LineageEdge{{UpstreamID: 7, Kind: "job"}},
		Properties:  map[string]string{"k1": "v1", "k2": "v2"},
		Stats:       []byte{1, 2, 3},
	}
	var out TableInfo
	if err := wire.Unmarshal(wire.Marshal(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.FullName != in.FullName || out.Owner != in.Owner {
		t.Fatalf("identity mismatch: %+v", out)
	}
	if len(out.Grants) != 1 || out.Grants[0] != in.Grants[0] {
		t.Fatalf("grants = %+v", out.Grants)
	}
	if len(out.Constraints) != 1 || out.Constraints[0] != in.Constraints[0] {
		t.Fatalf("constraints = %+v", out.Constraints)
	}
	if len(out.Lineage) != 1 || out.Lineage[0] != in.Lineage[0] {
		t.Fatalf("lineage = %+v", out.Lineage)
	}
	if out.Properties["k1"] != "v1" || out.Properties["k2"] != "v2" {
		t.Fatalf("properties = %v", out.Properties)
	}
	if !bytes.Equal(out.Stats, in.Stats) {
		t.Fatal("stats mismatch")
	}
}

func TestAllowedFor(t *testing.T) {
	info := &TableInfo{Grants: []Grant{
		{Principal: "alice", Privilege: "SELECT", Source: "table"},
		{Principal: "alice", Privilege: "MODIFY", Source: "schema"},
		{Principal: "alice", Privilege: "SELECT", Source: "catalog"}, // dup priv
		{Principal: "bob", Privilege: "OWN", Source: "table"},
	}}
	got := info.AllowedFor("alice")
	if len(got) != 2 || got[0] != "MODIFY" || got[1] != "SELECT" {
		t.Fatalf("AllowedFor = %v", got)
	}
	if len(info.AllowedFor("carol")) != 0 {
		t.Fatal("unknown principal should have no privileges")
	}
}

func TestMemSizeTracksPayload(t *testing.T) {
	small := &TableInfo{Stats: make([]byte, 10)}
	big := &TableInfo{Stats: make([]byte, 100000)}
	if big.MemSize() <= small.MemSize() {
		t.Fatal("MemSize should track stats payload")
	}
}

func TestUpdateTableStats(t *testing.T) {
	app, _ := seededApp(t, nil, 20)
	newStats := bytes.Repeat([]byte{9}, 512)
	if err := app.UpdateTableStats(3, newStats); err != nil {
		t.Fatal(err)
	}
	info, err := app.GetTableObject(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(info.Stats, newStats) {
		t.Fatal("stats update not visible")
	}
	if err := app.UpdateTableStats(9999, newStats); err == nil {
		t.Fatal("updating a missing table should fail")
	}
}

func TestUpdateTableKV(t *testing.T) {
	app, _ := seededApp(t, nil, 20)
	info, err := app.GetTableKV(5)
	if err != nil {
		t.Fatal(err)
	}
	info.Owner = "principal_override"
	if err := app.UpdateTableKV(info); err != nil {
		t.Fatal(err)
	}
	got, err := app.GetTableKV(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != "principal_override" {
		t.Fatalf("owner = %q", got.Owner)
	}
}

func TestVersionsAdvanceOnWrite(t *testing.T) {
	app, _ := seededApp(t, nil, 20)
	v1, found, err := app.VersionOfObject(2)
	if err != nil || !found {
		t.Fatalf("v1 = %v %v %v", v1, found, err)
	}
	if err := app.UpdateTableStats(2, []byte("xx")); err != nil {
		t.Fatal(err)
	}
	v2, _, err := app.VersionOfObject(2)
	if err != nil || v2 <= v1 {
		t.Fatalf("version should advance: %d -> %d (%v)", v1, v2, err)
	}
	if _, found, _ := app.VersionOfKV(2); !found {
		t.Fatal("denorm row should have a version")
	}
}

func TestMissingTableErrors(t *testing.T) {
	app, _ := seededApp(t, nil, 10)
	if _, err := app.GetTableObject(9999); err == nil {
		t.Fatal("missing table should error")
	}
	if _, err := app.GetTableKV(9999); err == nil {
		t.Fatal("missing denorm table should error")
	}
}

func TestSeedNormalizedOnly(t *testing.T) {
	node := storage.NewNode(storage.Config{Replicas: 1, BlockCacheBytes: 16 << 20})
	if err := Seed(node, SeedConfig{Tables: 10, Normalized: true, StatsBytesOverride: 128}); err != nil {
		t.Fatal(err)
	}
	app := NewApp(storage.NewClient(rpc.NewDirect(node.Server())))
	if _, err := app.GetTableObject(1); err != nil {
		t.Fatal(err)
	}
	if _, err := app.GetTableKV(1); err == nil {
		t.Fatal("denorm variant should be empty when not seeded")
	}
}

func TestStatsPayloadDeterministic(t *testing.T) {
	a := statsPayload(42, 100)
	b := statsPayload(42, 100)
	if !bytes.Equal(a, b) {
		t.Fatal("payload must be deterministic")
	}
	c := statsPayload(43, 100)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestPropsRoundtrip(t *testing.T) {
	in := map[string]string{"a": "1", "b": "2", "z": "26"}
	out, err := decodeProps(encodeProps(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("out = %v", out)
	}
	for k, v := range in {
		if out[k] != v {
			t.Fatalf("key %q: %q vs %q", k, out[k], v)
		}
	}
}

func BenchmarkGetTableObject(b *testing.B) {
	node := storage.NewNode(storage.Config{Replicas: 3, BlockCacheBytes: 64 << 20})
	if err := Seed(node, SeedConfig{Tables: 100, StatsBytesOverride: 23 << 10}); err != nil {
		b.Fatal(err)
	}
	app := NewApp(storage.NewClient(rpc.NewDirect(node.Server())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.GetTableObject(int64(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetTableKV(b *testing.B) {
	node := storage.NewNode(storage.Config{Replicas: 3, BlockCacheBytes: 64 << 20})
	if err := Seed(node, SeedConfig{Tables: 100, StatsBytesOverride: 23 << 10}); err != nil {
		b.Fatal(err)
	}
	app := NewApp(storage.NewClient(rpc.NewDirect(node.Server())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := app.GetTableKV(int64(i % 100)); err != nil {
			b.Fatal(err)
		}
	}
}
