// Package catalog implements the rich-object application of the study: a
// Unity-Catalog-like data governance service [13]. It models the paper's
// hierarchical namespace — metastore, catalogs, schemas, tables — with
// permissions granted to principals at any level and inherited downward,
// plus per-table constraints, lineage and properties.
//
// The package provides the two read paths compared in §5.4:
//
//   - GetTableObject (Unity Catalog-Object): the production shape, where
//     one logical read issues up to 8 SQL queries against the storage
//     layer and the application composes the rich object — resolving
//     inherited grants, merging constraints, assembling lineage.
//   - GetTableKV (Unity Catalog-KV): a heavily denormalized variant where
//     the fully materialized object lives in a single row and a read is
//     one key-value-style lookup plus deserialization.
package catalog

import (
	"fmt"
	"sort"

	"cachecost/internal/wire"
)

// Grant is one effective permission on a table.
type Grant struct {
	Principal string
	Privilege string
	// Source records where the grant was inherited from: "table",
	// "schema" or "catalog".
	Source string
}

// Constraint is one table constraint.
type Constraint struct {
	Name string
	Kind string // "primary_key", "foreign_key", "check"
	Expr string
}

// LineageEdge records that the table is derived from an upstream asset.
type LineageEdge struct {
	UpstreamID int64
	Kind       string // "table", "job", "notebook"
}

// TableInfo is the rich application object a getTable call returns: the
// composed governance view of one table. Reconstructing it from storage
// is expensive (many queries + application logic); caching it is the
// §5.4 opportunity.
type TableInfo struct {
	ID          int64
	Name        string
	FullName    string // catalog.schema.table
	Owner       string
	SchemaName  string
	CatalogName string
	Grants      []Grant
	Constraints []Constraint
	Lineage     []LineageEdge
	Properties  map[string]string
	// Stats is the bulky column-statistics payload that gives the
	// materialized object its Figure 3a size distribution.
	Stats []byte
}

// MemSize approximates the live object's footprint for cache budgeting.
func (t *TableInfo) MemSize() int64 {
	n := int64(len(t.Name)+len(t.FullName)+len(t.Owner)+len(t.SchemaName)+len(t.CatalogName)) + 96
	for _, g := range t.Grants {
		n += int64(len(g.Principal)+len(g.Privilege)+len(g.Source)) + 48
	}
	for _, c := range t.Constraints {
		n += int64(len(c.Name)+len(c.Kind)+len(c.Expr)) + 48
	}
	n += int64(len(t.Lineage)) * 24
	for k, v := range t.Properties {
		n += int64(len(k)+len(v)) + 32
	}
	return n + int64(len(t.Stats))
}

// AllowedFor returns the privileges principal holds on the table, sorted.
// This is the kind of application logic (§2.2) that does not fit a plain
// key-value cache: it consults the composed, inheritance-resolved view.
func (t *TableInfo) AllowedFor(principal string) []string {
	seen := make(map[string]bool)
	for _, g := range t.Grants {
		if g.Principal == principal {
			seen[g.Privilege] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Wire field numbers for TableInfo.
const (
	fID = iota + 1
	fName
	fFullName
	fOwner
	fSchemaName
	fCatalogName
	fGrant
	fConstraint
	fLineage
	fPropKey
	fPropVal
	fStats
)

// MarshalWire implements wire.Marshaler. This is the serialization a
// remote cache or denormalized row pays and a linked cache avoids.
func (t *TableInfo) MarshalWire(e *wire.Encoder) {
	e.Int64(fID, t.ID)
	e.String(fName, t.Name)
	e.String(fFullName, t.FullName)
	e.String(fOwner, t.Owner)
	e.String(fSchemaName, t.SchemaName)
	e.String(fCatalogName, t.CatalogName)
	for _, g := range t.Grants {
		e.Message(fGrant, func(sub *wire.Encoder) {
			sub.String(1, g.Principal)
			sub.String(2, g.Privilege)
			sub.String(3, g.Source)
		})
	}
	for _, c := range t.Constraints {
		e.Message(fConstraint, func(sub *wire.Encoder) {
			sub.String(1, c.Name)
			sub.String(2, c.Kind)
			sub.String(3, c.Expr)
		})
	}
	for _, l := range t.Lineage {
		e.Message(fLineage, func(sub *wire.Encoder) {
			sub.Int64(1, l.UpstreamID)
			sub.String(2, l.Kind)
		})
	}
	// Properties as parallel key/value fields, sorted for determinism.
	keys := make([]string, 0, len(t.Properties))
	for k := range t.Properties {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.String(fPropKey, k)
		e.String(fPropVal, t.Properties[k])
	}
	e.BytesField(fStats, t.Stats)
}

// UnmarshalWire implements wire.Unmarshaler.
func (t *TableInfo) UnmarshalWire(d *wire.Decoder) error {
	var propKeys, propVals []string
	for !d.Done() {
		f, typ, err := d.Next()
		if err != nil {
			return err
		}
		switch f {
		case fID:
			if t.ID, err = d.Int64(); err != nil {
				return err
			}
		case fName:
			if t.Name, err = d.String(); err != nil {
				return err
			}
		case fFullName:
			if t.FullName, err = d.String(); err != nil {
				return err
			}
		case fOwner:
			if t.Owner, err = d.String(); err != nil {
				return err
			}
		case fSchemaName:
			if t.SchemaName, err = d.String(); err != nil {
				return err
			}
		case fCatalogName:
			if t.CatalogName, err = d.String(); err != nil {
				return err
			}
		case fGrant:
			body, err := d.Bytes()
			if err != nil {
				return err
			}
			var g Grant
			if err := decodeTriple(body, &g.Principal, &g.Privilege, &g.Source); err != nil {
				return err
			}
			t.Grants = append(t.Grants, g)
		case fConstraint:
			body, err := d.Bytes()
			if err != nil {
				return err
			}
			var c Constraint
			if err := decodeTriple(body, &c.Name, &c.Kind, &c.Expr); err != nil {
				return err
			}
			t.Constraints = append(t.Constraints, c)
		case fLineage:
			body, err := d.Bytes()
			if err != nil {
				return err
			}
			l, err := decodeLineage(body)
			if err != nil {
				return err
			}
			t.Lineage = append(t.Lineage, l)
		case fPropKey:
			s, err := d.String()
			if err != nil {
				return err
			}
			propKeys = append(propKeys, s)
		case fPropVal:
			s, err := d.String()
			if err != nil {
				return err
			}
			propVals = append(propVals, s)
		case fStats:
			b, err := d.Bytes()
			if err != nil {
				return err
			}
			t.Stats = append([]byte(nil), b...)
		default:
			if err := d.Skip(typ); err != nil {
				return err
			}
		}
	}
	if len(propKeys) != len(propVals) {
		return fmt.Errorf("catalog: mismatched property keys/values")
	}
	if len(propKeys) > 0 {
		t.Properties = make(map[string]string, len(propKeys))
		for i, k := range propKeys {
			t.Properties[k] = propVals[i]
		}
	}
	return nil
}

func decodeTriple(buf []byte, a, b, c *string) error {
	d := wire.NewDecoder(buf)
	for !d.Done() {
		f, typ, err := d.Next()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			if *a, err = d.String(); err != nil {
				return err
			}
		case 2:
			if *b, err = d.String(); err != nil {
				return err
			}
		case 3:
			if *c, err = d.String(); err != nil {
				return err
			}
		default:
			if err := d.Skip(typ); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeLineage(buf []byte) (LineageEdge, error) {
	var l LineageEdge
	d := wire.NewDecoder(buf)
	for !d.Done() {
		f, typ, err := d.Next()
		if err != nil {
			return l, err
		}
		switch f {
		case 1:
			if l.UpstreamID, err = d.Int64(); err != nil {
				return l, err
			}
		case 2:
			if l.Kind, err = d.String(); err != nil {
				return l, err
			}
		default:
			if err := d.Skip(typ); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}
