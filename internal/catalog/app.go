package catalog

import (
	"fmt"
	"sort"

	"cachecost/internal/storage"
	"cachecost/internal/storage/plan"
	"cachecost/internal/storage/sql"
	"cachecost/internal/wire"
)

// App is the data-governance application logic, bound to a database
// client. It is deliberately stateless: caching is layered on top by the
// architecture assemblies in internal/core, so the same App serves Base,
// Remote and Linked configurations.
type App struct {
	db *storage.Client
}

// NewApp binds the application to a database client.
func NewApp(db *storage.Client) *App { return &App{db: db} }

// ObjectQueryCount is the number of SQL queries one GetTableObject issues
// — the paper's "up to 8 SQL queries" for a getTable (§2.2).
const ObjectQueryCount = 8

// GetTableObject performs the production read path: 8 SQL queries plus
// application-side composition of the rich object.
//
//  1. tables row (name, schema, owner, properties blob, stats payload)
//  2. schemas row (name, parent catalog)
//  3. catalogs row (name)
//  4. grants at table level        (JOIN principals for names)
//  5. grants at schema level       (inherited downward)
//  6. grants at catalog level      (inherited downward)
//  7. constraints for the table
//  8. lineage edges for the table
func (a *App) GetTableObject(id int64) (*TableInfo, error) {
	// 1: the table row.
	trs, err := a.db.Query("SELECT name, schema_id, owner_name, props, stats FROM tables WHERE id = ?", sql.Int64(id))
	if err != nil {
		return nil, err
	}
	if len(trs.Rows) == 0 {
		return nil, fmt.Errorf("catalog: no table %d", id)
	}
	row := trs.Rows[0]
	info := &TableInfo{
		ID:    id,
		Name:  row[0].Str,
		Owner: row[2].Str,
	}
	schemaID := row[1].Int
	props, err := decodeProps(row[3].Blob)
	if err != nil {
		return nil, err
	}
	info.Properties = props
	info.Stats = row[4].Blob

	// 2: parent schema.
	srs, err := a.db.Query("SELECT name, catalog_id FROM schemas WHERE id = ?", sql.Int64(schemaID))
	if err != nil {
		return nil, err
	}
	if len(srs.Rows) == 0 {
		return nil, fmt.Errorf("catalog: table %d has dangling schema %d", id, schemaID)
	}
	info.SchemaName = srs.Rows[0][0].Str
	catalogID := srs.Rows[0][1].Int

	// 3: parent catalog.
	crs, err := a.db.Query("SELECT name FROM catalogs WHERE id = ?", sql.Int64(catalogID))
	if err != nil {
		return nil, err
	}
	if len(crs.Rows) == 0 {
		return nil, fmt.Errorf("catalog: schema %d has dangling catalog %d", schemaID, catalogID)
	}
	info.CatalogName = crs.Rows[0][0].Str
	info.FullName = info.CatalogName + "." + info.SchemaName + "." + info.Name

	// 4-6: grants at each level of the hierarchy; inheritance is the
	// application's job, not the database's.
	for _, lvl := range []struct {
		securable int64
		source    string
	}{
		{id, "table"},
		{schemaIDBase + schemaID, "schema"},
		{catalogIDBase + catalogID, "catalog"},
	} {
		grs, err := a.db.Query(
			"SELECT principals.name, grants.privilege FROM grants JOIN principals ON grants.principal_id = principals.id WHERE grants.securable_id = ?",
			sql.Int64(lvl.securable))
		if err != nil {
			return nil, err
		}
		for _, g := range grs.Rows {
			info.Grants = append(info.Grants, Grant{
				Principal: g[0].Str,
				Privilege: g[1].Str,
				Source:    lvl.source,
			})
		}
	}
	sortGrants(info.Grants)

	// 7: constraints.
	cors, err := a.db.Query("SELECT name, kind, expr FROM constraints WHERE table_id = ?", sql.Int64(id))
	if err != nil {
		return nil, err
	}
	for _, c := range cors.Rows {
		info.Constraints = append(info.Constraints, Constraint{Name: c[0].Str, Kind: c[1].Str, Expr: c[2].Str})
	}

	// 8: lineage.
	lrs, err := a.db.Query("SELECT upstream_id, kind FROM lineage WHERE target_id = ?", sql.Int64(id))
	if err != nil {
		return nil, err
	}
	for _, l := range lrs.Rows {
		info.Lineage = append(info.Lineage, LineageEdge{UpstreamID: l[0].Int, Kind: l[1].Str})
	}
	return info, nil
}

// GetTableKV performs the denormalized read path: one lookup returning
// the serialized materialized object, deserialized by the application.
func (a *App) GetTableKV(id int64) (*TableInfo, error) {
	rs, err := a.db.Query("SELECT obj FROM tables_denorm WHERE id = ?", sql.Int64(id))
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, fmt.Errorf("catalog: no denormalized table %d", id)
	}
	info := &TableInfo{}
	if err := wire.Unmarshal(rs.Rows[0][0].Blob, info); err != nil {
		return nil, err
	}
	return info, nil
}

// UpdateTableStats is the Object-variant write path: refresh the bulky
// stats payload of one table (the common steady-state write in a
// governance service: statistics and property refreshes).
func (a *App) UpdateTableStats(id int64, stats []byte) error {
	rs, err := a.db.Exec("UPDATE tables SET stats = ? WHERE id = ?", sql.Blob(stats), sql.Int64(id))
	if err != nil {
		return err
	}
	if rs.RowsAffected == 0 {
		return fmt.Errorf("catalog: no table %d", id)
	}
	return nil
}

// UpdateTableKV is the KV-variant write path: re-materialize and replace
// the denormalized object (the write amplification denormalization buys).
func (a *App) UpdateTableKV(info *TableInfo) error {
	rs, err := a.db.Exec("UPDATE tables_denorm SET obj = ? WHERE id = ?",
		sql.Blob(wire.Marshal(info)), sql.Int64(info.ID))
	if err != nil {
		return err
	}
	if rs.RowsAffected == 0 {
		return fmt.Errorf("catalog: no denormalized table %d", info.ID)
	}
	return nil
}

// VersionOfObject returns the storage version of the table's base row:
// the freshness token a consistent cache must check (§5.5).
func (a *App) VersionOfObject(id int64) (uint64, bool, error) {
	return a.db.Version("tables", sql.Int64(id))
}

// VersionOfKV returns the storage version of the denormalized row.
func (a *App) VersionOfKV(id int64) (uint64, bool, error) {
	return a.db.Version("tables_denorm", sql.Int64(id))
}

// sortGrants orders grants by source precedence (table, schema, catalog)
// then principal then privilege, giving both read paths a canonical view.
func sortGrants(gs []Grant) {
	rank := map[string]int{"table": 0, "schema": 1, "catalog": 2}
	sort.Slice(gs, func(i, j int) bool {
		if rank[gs[i].Source] != rank[gs[j].Source] {
			return rank[gs[i].Source] < rank[gs[j].Source]
		}
		if gs[i].Principal != gs[j].Principal {
			return gs[i].Principal < gs[j].Principal
		}
		return gs[i].Privilege < gs[j].Privilege
	})
}

// ResultSize reports the bytes a result set shipped — used by experiments
// to account network/deserialization volumes.
func ResultSize(rs *plan.ResultSet) int64 { return rs.DataSize() }
