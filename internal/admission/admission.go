// Package admission implements SLO-aware admission control for the
// cachecost servers. Under open-loop load the offered rate does not care
// how the service is doing; past saturation an unprotected server builds
// an unbounded backlog, every request's latency diverges, and — because
// this laboratory prices CPU — the meter charges for work whose results
// arrive too late to matter. The admission gate bounds that backlog: a
// request either gets one of a fixed number of inflight slots, waits in a
// bounded FIFO queue, or is shed immediately; queued requests that
// outlive their deadline are abandoned without ever consuming handler
// CPU.
//
// The package is split in two layers. Queue is a purely deterministic
// state machine — every transition takes an explicit clock value — so its
// invariants (capacity is never exceeded, an accepted op is never lost,
// offered == admitted + shed + expired + waiting) are directly fuzzable.
// Gate wraps a Queue with goroutine-blocking semantics and real timers
// for use on the serving path.
package admission

import (
	"fmt"
	"sync"
	"time"
)

// Decision is the outcome of offering one request to the queue.
type Decision int

// The decisions.
const (
	// Admit grants an inflight slot immediately.
	Admit Decision = iota
	// Enqueue parks the request in the bounded wait queue; it will be
	// granted by a later Done or abandoned by its deadline.
	Enqueue
	// Shed rejects the request because the wait queue is full. Shedding
	// at arrival is the whole point: the server refuses work it cannot
	// serve within the SLO instead of queueing it to die.
	Shed
	// Expire rejects the request because its deadline had already passed
	// on arrival.
	Expire
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Admit:
		return "admit"
	case Enqueue:
		return "enqueue"
	case Shed:
		return "shed"
	case Expire:
		return "expire"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Stats are the queue's conservation counters. At every instant
// Offered == Admitted + Shed + Expired + Waiting: no request is ever
// unaccounted for.
type Stats struct {
	// Offered counts every request presented to the gate.
	Offered int64
	// Admitted counts requests that received an inflight slot (at once
	// or after waiting).
	Admitted int64
	// Shed counts requests rejected because the wait queue was full.
	Shed int64
	// Expired counts requests whose deadline passed before they were
	// granted a slot (on arrival or while waiting).
	Expired int64
	// Waiting is the current wait-queue occupancy.
	Waiting int64
	// Inflight is the current number of granted slots.
	Inflight int64
}

// Queue is the deterministic admission state machine: maxInflight slots
// and a FIFO wait queue of at most depth entries. It is not synchronized;
// Gate provides the concurrent wrapper. All methods take the clock as an
// argument so tests and the fuzzer fully control time.
type Queue struct {
	maxInflight int
	depth       int

	inflight int
	waiting  []uint64 // queued request ids, FIFO
	nextID   uint64

	offered, admitted, shed, expired int64
}

// NewQueue builds a queue with the given slot count and wait depth.
// maxInflight must be positive; depth may be zero (shed the instant all
// slots are busy).
func NewQueue(maxInflight, depth int) *Queue {
	if maxInflight <= 0 {
		panic("admission: maxInflight must be positive")
	}
	if depth < 0 {
		panic("admission: negative queue depth")
	}
	return &Queue{maxInflight: maxInflight, depth: depth}
}

// Offer presents one request with the given deadline (unix nanoseconds,
// 0 = none) at clock value now. The returned id identifies the request
// in later Grant results and Abandon calls; it is meaningful only for
// Admit and Enqueue.
func (q *Queue) Offer(deadline int64, now int64) (Decision, uint64) {
	q.offered++
	if deadline != 0 && now > deadline {
		q.expired++
		return Expire, 0
	}
	if q.inflight < q.maxInflight {
		q.inflight++
		q.admitted++
		q.nextID++
		return Admit, q.nextID
	}
	if len(q.waiting) >= q.depth {
		q.shed++
		return Shed, 0
	}
	q.nextID++
	q.waiting = append(q.waiting, q.nextID)
	return Enqueue, q.nextID
}

// Done releases the slot held by an admitted request and grants it to
// the first waiter. It returns the granted id and true, or 0 and false
// when the queue is empty.
func (q *Queue) Done() (uint64, bool) {
	if q.inflight <= 0 {
		panic("admission: Done without an admitted request")
	}
	q.inflight--
	if len(q.waiting) == 0 {
		return 0, false
	}
	id := q.waiting[0]
	// Slide rather than reslice so the backing array is reused.
	copy(q.waiting, q.waiting[1:])
	q.waiting = q.waiting[:len(q.waiting)-1]
	q.inflight++
	q.admitted++
	return id, true
}

// Abandon removes a waiting request whose deadline passed while queued,
// freeing its queue capacity immediately. It reports whether the id was
// found still waiting; false means the request was granted concurrently
// and the caller must treat it as admitted.
func (q *Queue) Abandon(id uint64) bool {
	for i := range q.waiting {
		if q.waiting[i] == id {
			q.waiting = append(q.waiting[:i], q.waiting[i+1:]...)
			q.expired++
			return true
		}
	}
	return false
}

// Stats snapshots the conservation counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Offered:  q.offered,
		Admitted: q.admitted,
		Shed:     q.shed,
		Expired:  q.expired,
		Waiting:  int64(len(q.waiting)),
		Inflight: int64(q.inflight),
	}
}

// Capacity returns the configured (maxInflight, depth).
func (q *Queue) Capacity() (int, int) { return q.maxInflight, q.depth }

// Outcome is the result of Gate.Enter.
type Outcome int

// The gate outcomes.
const (
	// Admitted: the request holds a slot; the caller must invoke the
	// release function exactly once when its work finishes.
	Admitted Outcome = iota
	// ShedQueueFull: rejected at arrival, wait queue full.
	ShedQueueFull
	// DeadlineExpired: the deadline passed before a slot was granted.
	DeadlineExpired
)

// Gate is the concurrent admission gate: a Queue plus per-waiter wake
// channels and deadline timers. All methods are safe for concurrent use.
// A nil Gate admits everything (the unconfigured, zero-overhead default).
type Gate struct {
	mu      sync.Mutex
	q       *Queue
	wake    map[uint64]chan struct{}
	granted map[uint64]bool
	now     func() time.Time
}

// NewGate builds a gate. now may be nil for the wall clock; tests inject
// a fake.
func NewGate(maxInflight, depth int, now func() time.Time) *Gate {
	if now == nil {
		now = time.Now
	}
	return &Gate{
		q:       NewQueue(maxInflight, depth),
		wake:    make(map[uint64]chan struct{}),
		granted: make(map[uint64]bool),
		now:     now,
	}
}

// Enter offers one request with the given deadline (zero time = none).
// It blocks while the request waits in the queue, up to the deadline.
// When the outcome is Admitted the returned release function must be
// called exactly once; otherwise it is nil. A nil gate admits with a
// no-op release.
func (g *Gate) Enter(deadline time.Time) (Outcome, func()) {
	if g == nil {
		return Admitted, func() {}
	}
	var dl int64
	if !deadline.IsZero() {
		dl = deadline.UnixNano()
	}
	g.mu.Lock()
	dec, id := g.q.Offer(dl, g.now().UnixNano())
	switch dec {
	case Admit:
		g.mu.Unlock()
		return Admitted, g.release
	case Shed:
		g.mu.Unlock()
		return ShedQueueFull, nil
	case Expire:
		g.mu.Unlock()
		return DeadlineExpired, nil
	}
	ch := make(chan struct{})
	g.wake[id] = ch
	g.mu.Unlock()

	var timerC <-chan time.Time
	if dl != 0 {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case <-ch:
		g.mu.Lock()
		delete(g.granted, id)
		g.mu.Unlock()
		return Admitted, g.release
	case <-timerC:
		g.mu.Lock()
		if g.granted[id] {
			// The grant raced the timer: the slot is ours. Taking it (and
			// letting the handler observe the expired deadline downstream)
			// keeps the accounting single-owner.
			delete(g.granted, id)
			g.mu.Unlock()
			return Admitted, g.release
		}
		g.q.Abandon(id)
		delete(g.wake, id)
		g.mu.Unlock()
		return DeadlineExpired, nil
	}
}

// release frees a slot and wakes the next live waiter.
func (g *Gate) release() {
	g.mu.Lock()
	id, ok := g.q.Done()
	if ok {
		if ch, live := g.wake[id]; live {
			delete(g.wake, id)
			g.granted[id] = true
			close(ch)
		}
	}
	g.mu.Unlock()
}

// Stats snapshots the gate's conservation counters. Nil-safe.
func (g *Gate) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Stats()
}
