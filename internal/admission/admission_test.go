package admission

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueBasics(t *testing.T) {
	q := NewQueue(2, 1)
	d1, id1 := q.Offer(0, 0)
	d2, _ := q.Offer(0, 0)
	if d1 != Admit || d2 != Admit {
		t.Fatalf("first two offers: %v/%v, want admit/admit", d1, d2)
	}
	if id1 == 0 {
		t.Fatal("admit returned zero id")
	}
	d3, id3 := q.Offer(0, 0)
	if d3 != Enqueue || id3 == 0 {
		t.Fatalf("third offer: %v/%d, want enqueue/nonzero", d3, id3)
	}
	if d4, _ := q.Offer(0, 0); d4 != Shed {
		t.Fatalf("fourth offer: %v, want shed (queue full)", d4)
	}
	if d5, _ := q.Offer(10, 20); d5 != Expire {
		t.Fatalf("expired-on-arrival offer: %v, want expire", d5)
	}
	gid, ok := q.Done()
	if !ok || gid != id3 {
		t.Fatalf("Done granted %d/%v, want %d/true", gid, ok, id3)
	}
	s := q.Stats()
	if s.Offered != 5 || s.Admitted != 3 || s.Shed != 1 || s.Expired != 1 || s.Waiting != 0 || s.Inflight != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestQueueAbandon(t *testing.T) {
	q := NewQueue(1, 2)
	q.Offer(0, 0) // takes the slot
	_, idA := q.Offer(0, 0)
	_, idB := q.Offer(0, 0)
	if !q.Abandon(idA) {
		t.Fatal("Abandon(idA) = false")
	}
	if q.Abandon(idA) {
		t.Fatal("double Abandon succeeded")
	}
	gid, ok := q.Done() // must skip the abandoned head
	if !ok || gid != idB {
		t.Fatalf("Done granted %d/%v, want %d/true", gid, ok, idB)
	}
	s := q.Stats()
	if s.Offered != 3 || s.Admitted != 2 || s.Expired != 1 || s.Waiting != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	out, release := g.Enter(time.Time{})
	if out != Admitted || release == nil {
		t.Fatalf("nil gate: %v", out)
	}
	release()
	if s := g.Stats(); s != (Stats{}) {
		t.Fatalf("nil gate stats %+v", s)
	}
}

func TestGateShedsWhenFull(t *testing.T) {
	g := NewGate(1, 0, nil)
	out, release := g.Enter(time.Time{})
	if out != Admitted {
		t.Fatalf("first enter: %v", out)
	}
	if out2, _ := g.Enter(time.Time{}); out2 != ShedQueueFull {
		t.Fatalf("second enter with depth 0: %v", out2)
	}
	release()
	out3, release3 := g.Enter(time.Time{})
	if out3 != Admitted {
		t.Fatalf("enter after release: %v", out3)
	}
	release3()
	s := g.Stats()
	if s.Offered != 3 || s.Admitted != 2 || s.Shed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGateExpiredOnArrival(t *testing.T) {
	g := NewGate(1, 4, nil)
	out, release := g.Enter(time.Now().Add(-time.Millisecond))
	if out != DeadlineExpired || release != nil {
		t.Fatalf("stale deadline: %v", out)
	}
}

func TestGateQueuedWaiterExpires(t *testing.T) {
	g := NewGate(1, 4, nil)
	_, release := g.Enter(time.Time{}) // hold the only slot
	done := make(chan Outcome, 1)
	go func() {
		out, rel := g.Enter(time.Now().Add(20 * time.Millisecond))
		if rel != nil {
			rel()
		}
		done <- out
	}()
	out := <-done
	if out != DeadlineExpired {
		t.Fatalf("queued waiter: %v, want DeadlineExpired", out)
	}
	release()
	s := g.Stats()
	if s.Offered != 2 || s.Admitted != 1 || s.Expired != 1 || s.Waiting != 0 || s.Inflight != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGateQueuedWaiterGranted(t *testing.T) {
	g := NewGate(1, 4, nil)
	_, release := g.Enter(time.Time{})
	done := make(chan Outcome, 1)
	go func() {
		out, rel := g.Enter(time.Now().Add(5 * time.Second))
		if rel != nil {
			rel()
		}
		done <- out
	}()
	// Let the waiter park, then free the slot.
	time.Sleep(10 * time.Millisecond)
	release()
	if out := <-done; out != Admitted {
		t.Fatalf("queued waiter: %v, want Admitted", out)
	}
	s := g.Stats()
	if s.Admitted != 2 || s.Inflight != 0 || s.Waiting != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestGateConcurrentConservation hammers the gate from many goroutines
// and checks that every request is accounted for exactly once and the
// inflight bound held throughout.
func TestGateConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		perW    = 200
		slots   = 3
		depth   = 4
	)
	g := NewGate(slots, depth, nil)
	var inflight, maxSeen atomic.Int64
	var admitted, shed, expired atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				var dl time.Time
				if (seed+i)%3 == 0 {
					dl = time.Now().Add(time.Duration((seed+i)%5) * time.Millisecond)
				}
				out, release := g.Enter(dl)
				switch out {
				case Admitted:
					cur := inflight.Add(1)
					for {
						m := maxSeen.Load()
						if cur <= m || maxSeen.CompareAndSwap(m, cur) {
							break
						}
					}
					if (seed+i)%2 == 0 {
						time.Sleep(time.Duration((seed+i)%3) * 100 * time.Microsecond)
					}
					inflight.Add(-1)
					release()
					admitted.Add(1)
				case ShedQueueFull:
					shed.Add(1)
				case DeadlineExpired:
					expired.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if m := maxSeen.Load(); m > slots {
		t.Fatalf("observed %d concurrent admissions, cap %d", m, slots)
	}
	total := admitted.Load() + shed.Load() + expired.Load()
	if total != workers*perW {
		t.Fatalf("accounted %d of %d requests", total, workers*perW)
	}
	s := g.Stats()
	if s.Offered != workers*perW {
		t.Fatalf("gate offered %d, want %d", s.Offered, workers*perW)
	}
	if s.Admitted != admitted.Load() || s.Shed != shed.Load() || s.Expired != expired.Load() {
		t.Fatalf("gate stats %+v vs local admitted=%d shed=%d expired=%d",
			s, admitted.Load(), shed.Load(), expired.Load())
	}
	if s.Inflight != 0 || s.Waiting != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
}
