package admission

import (
	"testing"
)

// FuzzAdmissionQueue drives the deterministic admission state machine
// through arbitrary interleavings of offers (with and without deadlines),
// completions, abandons and clock advances, and checks the safety
// invariants after every step:
//
//   - capacity is never exceeded: inflight <= maxInflight and
//     waiting <= depth at all times;
//   - an accepted op is never lost: every Enqueue id is eventually
//     granted or abandoned, never silently dropped;
//   - conservation: offered == admitted + shed + expired + waiting.
func FuzzAdmissionQueue(f *testing.F) {
	f.Add(1, 0, []byte{0, 0, 0, 1, 1})
	f.Add(2, 3, []byte{0, 0, 0, 0, 0, 1, 2, 1, 1})
	f.Add(1, 4, []byte{0x40, 0x41, 0x42, 3, 3, 1, 1, 2})
	f.Add(4, 4, []byte{0, 0x81, 0, 0x82, 1, 3, 2, 1, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, maxInflight, depth int, program []byte) {
		if maxInflight <= 0 || maxInflight > 8 || depth < 0 || depth > 8 {
			t.Skip()
		}
		q := NewQueue(maxInflight, depth)
		now := int64(0)
		inflight := 0
		// waiting tracks live (un-abandoned) queued ids in FIFO order.
		var waiting []uint64

		check := func(step int, op string) {
			s := q.Stats()
			if s.Inflight != int64(inflight) {
				t.Fatalf("step %d (%s): queue inflight %d, model %d", step, op, s.Inflight, inflight)
			}
			if s.Inflight > int64(maxInflight) {
				t.Fatalf("step %d (%s): inflight %d exceeds cap %d", step, op, s.Inflight, maxInflight)
			}
			if s.Waiting != int64(len(waiting)) {
				t.Fatalf("step %d (%s): queue waiting %d, model %d", step, op, s.Waiting, len(waiting))
			}
			if s.Waiting > int64(depth) {
				t.Fatalf("step %d (%s): waiting %d exceeds depth %d", step, op, s.Waiting, depth)
			}
			if s.Offered != s.Admitted+s.Shed+s.Expired+s.Waiting {
				t.Fatalf("step %d (%s): conservation violated: %+v", step, op, s)
			}
		}

		for step, b := range program {
			switch b & 0x03 {
			case 0: // offer; high bits select the relative deadline
				var dl int64
				switch (b >> 2) & 0x03 {
				case 1:
					dl = now + int64(b>>4) + 1 // future deadline
				case 2:
					dl = now - int64(b>>4) - 1 // already expired
					if dl == 0 {
						dl = -1
					}
				}
				dec, id := q.Offer(dl, now)
				switch dec {
				case Admit:
					if inflight >= maxInflight {
						t.Fatalf("step %d: admit with %d/%d inflight", step, inflight, maxInflight)
					}
					inflight++
				case Enqueue:
					if len(waiting) >= depth {
						t.Fatalf("step %d: enqueue with %d/%d waiting", step, len(waiting), depth)
					}
					waiting = append(waiting, id)
				case Shed:
					if len(waiting) < depth {
						t.Fatalf("step %d: shed with queue space (%d/%d)", step, len(waiting), depth)
					}
				case Expire:
					if dl == 0 || now <= dl {
						t.Fatalf("step %d: expired a live deadline (dl=%d now=%d)", step, dl, now)
					}
				}
				check(step, "offer")
			case 1: // done
				if inflight == 0 {
					continue // Done without an admitted op would rightly panic
				}
				id, granted := q.Done()
				inflight--
				if granted {
					if len(waiting) == 0 {
						t.Fatalf("step %d: granted %d with empty model queue", step, id)
					}
					if waiting[0] != id {
						t.Fatalf("step %d: granted %d, FIFO head is %d", step, id, waiting[0])
					}
					waiting = waiting[1:]
					inflight++
				} else if len(waiting) != 0 {
					t.Fatalf("step %d: no grant with %d live waiters", step, len(waiting))
				}
				check(step, "done")
			case 2: // abandon the waiter selected by the high bits
				if len(waiting) == 0 {
					continue
				}
				i := int(b>>2) % len(waiting)
				id := waiting[i]
				if !q.Abandon(id) {
					t.Fatalf("step %d: Abandon(%d) failed for a live waiter", step, id)
				}
				waiting = append(waiting[:i], waiting[i+1:]...)
				check(step, "abandon")
			case 3: // advance the clock
				now += int64(b >> 2)
				check(step, "tick")
			}
		}

		// Drain: every accepted op must surface. Complete all inflight work;
		// each Done may grant a waiter, which we then complete too.
		for inflight > 0 {
			id, granted := q.Done()
			inflight--
			if granted {
				if len(waiting) == 0 || waiting[0] != id {
					t.Fatalf("drain: granted %d, model head %v", id, waiting)
				}
				waiting = waiting[1:]
				inflight++
			}
			check(len(program), "drain")
		}
		if len(waiting) != 0 {
			t.Fatalf("drain left %d accepted ops stranded", len(waiting))
		}
		s := q.Stats()
		if s.Offered != s.Admitted+s.Shed+s.Expired {
			t.Fatalf("final conservation violated: %+v", s)
		}
	})
}
