package consistency

import (
	"errors"
	"fmt"
	"sync"
)

// This file implements the paper's Figure 8 "delayed writes" problem and
// the write-fencing mechanism that closes it.
//
// The anomaly: (1) an application sends a write to storage, but the write
// is delayed in flight; (2) a different cache instance — after a reshard
// or failover — reads the current (old) value from storage and becomes
// the authoritative owner; (3) the delayed write lands, leaving cache and
// storage permanently out of sync.
//
// The fix demonstrated here: writes carry a fencing token (the ownership
// generation under which they were issued); storage rejects tokens older
// than the highest it has admitted for that key. The delayed write from
// before the reshard then fails instead of corrupting the new owner's
// authority — the same discipline Chubby-style lock services impose on
// lagging lock holders.

// ErrFenced is returned by FencedStore for writes carrying a stale token.
var ErrFenced = errors.New("consistency: write fenced (stale ownership token)")

// FencedStore is a toy versioned KV store that optionally enforces write
// fencing. It stands in for the real storage node in the Figure 8
// scenario so the interleaving can be scripted precisely.
type FencedStore struct {
	mu       sync.Mutex
	data     map[string]string
	versions map[string]uint64
	fences   map[string]uint64
	nextVer  uint64
	// Enforce controls whether stale tokens are rejected.
	Enforce bool
}

// NewFencedStore returns an empty store.
func NewFencedStore(enforce bool) *FencedStore {
	return &FencedStore{
		data:     make(map[string]string),
		versions: make(map[string]uint64),
		fences:   make(map[string]uint64),
		Enforce:  enforce,
	}
}

// Get returns the value and version of key.
func (s *FencedStore) Get(key string) (string, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.data[key]
	return v, s.versions[key], ok
}

// Put writes key with a fencing token. If enforcement is on and the token
// is older than the highest admitted token for the key, the write is
// rejected with ErrFenced.
func (s *FencedStore) Put(key, value string, token uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Enforce && token < s.fences[key] {
		return 0, ErrFenced
	}
	if token > s.fences[key] {
		s.fences[key] = token
	}
	s.nextVer++
	s.data[key] = value
	s.versions[key] = s.nextVer
	return s.nextVer, nil
}

// AdvanceFence records that the new owner of key operates at the given
// generation, fencing out older writers even before the new owner's
// first write.
func (s *FencedStore) AdvanceFence(key string, token uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if token > s.fences[key] {
		s.fences[key] = token
	}
}

// DelayedWriteReport is the outcome of one Figure 8 run.
type DelayedWriteReport struct {
	// Fenced reports whether write fencing was enforced.
	Fenced bool
	// DelayedWriteApplied reports whether the delayed write landed in
	// storage.
	DelayedWriteApplied bool
	// CacheValue and StorageValue are the final values seen by the cache
	// owner and stored durably.
	CacheValue   string
	StorageValue string
	// Stale reports the anomaly: the authoritative cache disagrees with
	// storage.
	Stale bool
}

// String renders the report.
func (r DelayedWriteReport) String() string {
	return fmt.Sprintf("fenced=%v delayedApplied=%v cache=%q storage=%q stale=%v",
		r.Fenced, r.DelayedWriteApplied, r.CacheValue, r.StorageValue, r.Stale)
}

// RunDelayedWriteScenario scripts Figure 8 against a FencedStore:
//
//	t0: instance A owns "k" (generation 1) and issues Put(k, "new") —
//	    but the write stalls in flight.
//	t1: a reshard moves "k" to instance B (generation 2). B reads "old"
//	    from storage and becomes authoritative; with fencing, B's
//	    takeover advances the fence.
//	t2: A's delayed write finally reaches storage.
//	t3: B serves "k" from its authoritative cache.
//
// Without fencing the delayed write lands and B serves stale data
// forever. With fencing the delayed write is rejected and cache and
// storage agree.
func RunDelayedWriteScenario(enforceFencing bool) DelayedWriteReport {
	store := NewFencedStore(enforceFencing)
	const key = "k"

	// Initial committed state, written under generation 1.
	store.Put(key, "old", 1)

	// t1: reshard to B at generation 2; B reads current value and, if
	// fencing is on, registers its generation with storage.
	if enforceFencing {
		store.AdvanceFence(key, 2)
	}
	bCache, _, _ := store.Get(key) // B's authoritative copy

	// t2: A's delayed write (issued under generation 1) arrives.
	_, err := store.Put(key, "new", 1)
	applied := err == nil

	// t3: B serves from cache; storage has whatever it has.
	storageVal, _, _ := store.Get(key)

	return DelayedWriteReport{
		Fenced:              enforceFencing,
		DelayedWriteApplied: applied,
		CacheValue:          bCache,
		StorageValue:        storageVal,
		Stale:               bCache != storageVal,
	}
}
