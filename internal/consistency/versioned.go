// Package consistency implements the consistent-caching strategies the
// paper studies and proposes:
//
//   - VersionedCache: the Linked+Version baseline (§2.4, Figure 1d). Every
//     read revalidates the cached entry against the storage version before
//     returning it — linearizable, but each read still pays a storage
//     round trip, which §5.5 shows erases most of the cache's cost
//     savings.
//   - OwnedCache: the §6 future-work design. An auto-sharder grants the
//     cache strong ownership over key ranges; while ownership is valid
//     and all writes route through the owner, reads skip the per-read
//     version check entirely and remain linearizable.
//   - The delayed-writes problem (Figure 8): a scripted anomaly showing
//     how a write delayed across a resharding leaves an ownership-based
//     cache stale, and a write-fencing mechanism that prevents it.
package consistency

import (
	"sync"

	"cachecost/internal/linkedcache"
)

// LoadFunc fetches the current value and its storage version for key.
type LoadFunc[V any] func(key string) (V, uint64, error)

// CheckFunc fetches only the storage version for key (the §5.5 version
// check). found=false means the key does not exist in storage.
type CheckFunc func(key string) (version uint64, found bool, err error)

// versioned pairs a cached value with the storage version it reflects.
type versioned[V any] struct {
	value   V
	version uint64
}

// VersionedStats counts consistency events.
type VersionedStats struct {
	Reads  int64
	Hits   int64 // cache had the entry and the version matched
	Stale  int64 // cache had the entry but the version moved on
	Misses int64 // cache had no entry
	Checks int64 // version checks issued
	Loads  int64 // full loads from storage
}

// VersionedCache is a linked cache with per-read version validation.
// It is safe for concurrent use.
type VersionedCache[V any] struct {
	cache *linkedcache.Cache[versioned[V]]

	mu    sync.Mutex
	stats VersionedStats
}

// NewVersionedCache builds the cache; sizeOf budgets the live value.
func NewVersionedCache[V any](cfg linkedcache.Config, sizeOf func(key string, v V) int64) *VersionedCache[V] {
	return &VersionedCache[V]{
		cache: linkedcache.New(cfg, func(k string, e versioned[V]) int64 {
			return sizeOf(k, e.value) + 16
		}),
	}
}

// Read returns a linearizable view of key: the cached value revalidated
// by a version check, or a fresh load. hit reports whether the cached
// entry was served (after validation).
func (c *VersionedCache[V]) Read(key string, check CheckFunc, load LoadFunc[V]) (V, bool, error) {
	var zero V
	c.count(func(s *VersionedStats) { s.Reads++ })

	entry, cached := c.cache.Get(key)
	// The version check goes to storage on every read — this is the
	// baseline's defining cost.
	c.count(func(s *VersionedStats) { s.Checks++ })
	ver, found, err := check(key)
	if err != nil {
		return zero, false, err
	}
	if cached && found && entry.version == ver {
		c.count(func(s *VersionedStats) { s.Hits++ })
		return entry.value, true, nil
	}
	if cached {
		c.count(func(s *VersionedStats) { s.Stale++ })
		c.cache.Delete(key)
	} else {
		c.count(func(s *VersionedStats) { s.Misses++ })
	}
	v, loadedVer, err := load(key)
	if err != nil {
		return zero, false, err
	}
	c.count(func(s *VersionedStats) { s.Loads++ })
	c.cache.Put(key, versioned[V]{value: v, version: loadedVer})
	return v, false, nil
}

// Write records a locally performed write: the caller has written storage
// (obtaining version) and hands the new value to keep the cache warm.
func (c *VersionedCache[V]) Write(key string, v V, version uint64) {
	c.cache.Put(key, versioned[V]{value: v, version: version})
}

// Invalidate drops key.
func (c *VersionedCache[V]) Invalidate(key string) { c.cache.Delete(key) }

// Stats returns a snapshot of counters.
func (c *VersionedCache[V]) Stats() VersionedStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *VersionedCache[V]) count(fn func(*VersionedStats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}
