package consistency

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"cachecost/internal/cluster"
	"cachecost/internal/linkedcache"
)

// fakeStore is a tiny versioned KV used to drive the caches in tests.
type fakeStore struct {
	mu       sync.Mutex
	data     map[string]string
	versions map[string]uint64
	next     uint64
	loads    int
	checks   int
}

func newFakeStore() *fakeStore {
	return &fakeStore{data: make(map[string]string), versions: make(map[string]uint64)}
}

func (s *fakeStore) put(key, val string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	s.data[key] = val
	s.versions[key] = s.next
	return s.next
}

func (s *fakeStore) load(key string) (string, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	v, ok := s.data[key]
	if !ok {
		return "", 0, fmt.Errorf("no key %q", key)
	}
	return v, s.versions[key], nil
}

func (s *fakeStore) check(key string) (uint64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks++
	v, ok := s.versions[key]
	return v, ok, nil
}

func strSize(_ string, v string) int64 { return int64(len(v)) + 16 }

func newVC() *VersionedCache[string] {
	return NewVersionedCache[string](linkedcache.Config{CapacityBytes: 1 << 20}, strSize)
}

func TestVersionedReadMissThenHit(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c := newVC()

	v, hit, err := c.Read("k", st.check, st.load)
	if err != nil || hit || v != "v1" {
		t.Fatalf("first read = %q %v %v", v, hit, err)
	}
	v, hit, err = c.Read("k", st.check, st.load)
	if err != nil || !hit || v != "v1" {
		t.Fatalf("second read = %q %v %v", v, hit, err)
	}
	if st.loads != 1 {
		t.Fatalf("loads = %d, want 1", st.loads)
	}
	// The defining §5.5 property: EVERY read checked the version.
	if st.checks != 2 {
		t.Fatalf("checks = %d, want one per read", st.checks)
	}
}

func TestVersionedReadSeesNewWritesImmediately(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c := newVC()
	c.Read("k", st.check, st.load)

	st.put("k", "v2") // external write, no invalidation sent
	v, hit, err := c.Read("k", st.check, st.load)
	if err != nil || hit || v != "v2" {
		t.Fatalf("read after external write = %q hit=%v err=%v", v, hit, err)
	}
	stats := c.Stats()
	if stats.Stale != 1 {
		t.Fatalf("stale = %d, want 1", stats.Stale)
	}
}

func TestVersionedLinearizabilityUnderRandomWrites(t *testing.T) {
	// Property: a versioned read NEVER returns a value older than the
	// last completed write.
	st := newFakeStore()
	c := newVC()
	for i := 0; i < 500; i++ {
		want := fmt.Sprintf("v%d", i)
		st.put("k", want)
		got, _, err := c.Read("k", st.check, st.load)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iteration %d: read %q, want %q (stale read!)", i, got, want)
		}
	}
}

func TestVersionedWriteKeepsCacheWarm(t *testing.T) {
	st := newFakeStore()
	c := newVC()
	ver := st.put("k", "mine")
	c.Write("k", "mine", ver)
	_, hit, err := c.Read("k", st.check, st.load)
	if err != nil || !hit {
		t.Fatalf("read after local write: hit=%v err=%v", hit, err)
	}
	if st.loads != 0 {
		t.Fatal("local write should have avoided the reload")
	}
}

func TestVersionedInvalidate(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v")
	c := newVC()
	c.Read("k", st.check, st.load)
	c.Invalidate("k")
	_, hit, _ := c.Read("k", st.check, st.load)
	if hit {
		t.Fatal("invalidated entry should miss")
	}
}

func TestVersionedErrorPropagation(t *testing.T) {
	c := newVC()
	boom := errors.New("check failed")
	_, _, err := c.Read("k",
		func(string) (uint64, bool, error) { return 0, false, boom },
		func(string) (string, uint64, error) { return "", 0, nil })
	if !errors.Is(err, boom) {
		t.Fatalf("check error should propagate, got %v", err)
	}
	st := newFakeStore()
	_, _, err = c.Read("missing", st.check, st.load)
	if err == nil {
		t.Fatal("load error should propagate")
	}
}

func newOwned(self string, sh *cluster.Sharder) *OwnedCache[string] {
	return NewOwnedCache[string](self, sh, linkedcache.Config{CapacityBytes: 1 << 20}, strSize)
}

func TestOwnedReadSkipsStorageAfterFirstLoad(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	sh := cluster.NewSharder(64)
	c := newOwned("app1", sh)

	if _, _, err := c.Read("k", st.load); err != nil {
		t.Fatal(err)
	}
	loadsAfterFirst := st.loads
	for i := 0; i < 100; i++ {
		v, hit, err := c.Read("k", st.load)
		if err != nil || !hit || v != "v1" {
			t.Fatalf("read %d = %q %v %v", i, v, hit, err)
		}
	}
	if st.loads != loadsAfterFirst {
		t.Fatalf("owned reads must not contact storage: %d extra loads", st.loads-loadsAfterFirst)
	}
	if c.Stats().AuthorityHits != 100 {
		t.Fatalf("authority hits = %d", c.Stats().AuthorityHits)
	}
}

func TestOwnedWriteThroughKeepsLinearizability(t *testing.T) {
	st := newFakeStore()
	sh := cluster.NewSharder(64)
	c := newOwned("app1", sh)
	for i := 0; i < 200; i++ {
		want := fmt.Sprintf("v%d", i)
		err := c.Write("k", want, func() (uint64, error) { return st.put("k", want), nil })
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.Read("k", st.load)
		if err != nil || got != want {
			t.Fatalf("iteration %d: %q vs %q (%v)", i, got, want, err)
		}
	}
	// All reads after the first write were authority hits: zero loads.
	if st.loads != 0 {
		t.Fatalf("owner-routed writes should make loads unnecessary, got %d", st.loads)
	}
}

func TestOwnedReshardRevokesAuthority(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	sh := cluster.NewSharder(64)
	c1 := newOwned("app1", sh)
	c1.Read("k", st.load)

	// Another instance joins; whether or not "k" moves, c1's outstanding
	// assignments are invalidated, so its next read revalidates.
	c2 := newOwned("app2", sh)
	st.put("k", "v2") // write lands via a path c1 did not see

	owner := sh.Owner("k")
	var v string
	var err error
	switch owner {
	case "app1":
		v, _, err = c1.Read("k", st.load)
	case "app2":
		v, _, err = c2.Read("k", st.load)
	default:
		t.Fatalf("unowned key after join: %q", owner)
	}
	if err != nil || v != "v2" {
		t.Fatalf("post-reshard read = %q (%v), want v2", v, err)
	}
}

func TestOwnedRejectsForeignKeys(t *testing.T) {
	st := newFakeStore()
	sh := cluster.NewSharder(64)
	c1 := newOwned("app1", sh)
	c2 := newOwned("app2", sh)
	// Find a key owned by app2 and access it via app1.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if sh.Owner(key) == "app2" {
			if _, _, err := c1.Read(key, st.load); !errors.Is(err, ErrNotOwner) {
				t.Fatalf("foreign read should be rejected, got %v", err)
			}
			if err := c1.Write(key, "x", func() (uint64, error) { return 0, nil }); !errors.Is(err, ErrNotOwner) {
				t.Fatalf("foreign write should be rejected, got %v", err)
			}
			_ = c2
			return
		}
	}
	t.Fatal("no key owned by app2 found")
}

func TestDelayedWriteAnomalyWithoutFencing(t *testing.T) {
	r := RunDelayedWriteScenario(false)
	if !r.DelayedWriteApplied {
		t.Fatal("without fencing the delayed write must land")
	}
	if !r.Stale {
		t.Fatalf("Figure 8 anomaly should reproduce: %s", r)
	}
	if r.CacheValue != "old" || r.StorageValue != "new" {
		t.Fatalf("unexpected values: %s", r)
	}
}

func TestDelayedWritePreventedByFencing(t *testing.T) {
	r := RunDelayedWriteScenario(true)
	if r.DelayedWriteApplied {
		t.Fatal("fencing must reject the delayed write")
	}
	if r.Stale {
		t.Fatalf("fenced run should stay consistent: %s", r)
	}
}

func TestFencedStoreSemantics(t *testing.T) {
	s := NewFencedStore(true)
	if _, err := s.Put("k", "a", 1); err != nil {
		t.Fatal(err)
	}
	s.AdvanceFence("k", 3)
	if _, err := s.Put("k", "b", 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale token should fence, got %v", err)
	}
	if _, err := s.Put("k", "c", 3); err != nil {
		t.Fatalf("current token should pass, got %v", err)
	}
	v, ver, ok := s.Get("k")
	if !ok || v != "c" || ver == 0 {
		t.Fatalf("Get = %q %d %v", v, ver, ok)
	}
	// Unenforced store admits anything.
	u := NewFencedStore(false)
	u.AdvanceFence("k", 9)
	if _, err := u.Put("k", "x", 1); err != nil {
		t.Fatalf("unenforced store should admit stale tokens: %v", err)
	}
}

func TestOwnedVsVersionedStorageTraffic(t *testing.T) {
	// The §6 pitch in one test: for a read-heavy key, the versioned cache
	// contacts storage on every read, the owned cache once.
	st := newFakeStore()
	st.put("k", "v")
	vc := newVC()
	sh := cluster.NewSharder(64)
	oc := newOwned("app1", sh)

	const reads = 100
	for i := 0; i < reads; i++ {
		vc.Read("k", st.check, st.load)
	}
	versionedContacts := st.checks + st.loads

	st.checks, st.loads = 0, 0
	for i := 0; i < reads; i++ {
		oc.Read("k", st.load)
	}
	ownedContacts := st.checks + st.loads

	if versionedContacts < reads {
		t.Fatalf("versioned cache should contact storage per read: %d", versionedContacts)
	}
	if ownedContacts != 1 {
		t.Fatalf("owned cache should contact storage once: %d", ownedContacts)
	}
}
