package consistency

import (
	"sync"
	"sync/atomic"
	"time"

	"cachecost/internal/linkedcache"
)

// TTLCache is the industry-standard freshness compromise the paper's
// related work surveys (§7): entries are served without any storage
// contact until they age out. Reads are as cheap as an eventually
// consistent cache's — but unlike VersionedCache and OwnedCache, a read
// may return data up to TTL old. It completes the strategy spectrum the
// repository lets you price:
//
//	Linked            eventual consistency   cheapest
//	TTLCache          bounded staleness      cheap, staleness ≤ TTL
//	OwnedCache        linearizable           cheap while ownership holds
//	VersionedCache    linearizable           storage round trip per read
type TTLCache[V any] struct {
	cache *linkedcache.Cache[ttlEntry[V]]
	ttl   atomic.Int64 // nanoseconds; SetTTL retunes it live
	now   func() time.Time

	// mu guards the stats, the flight table, and — crucially — every
	// mutation of the underlying cache (Put, Delete). Serializing the
	// mutations is what makes the freshness invariants below checkable:
	// a Write that lands during a load flight marks the flight
	// superseded (so the leader's older loaded value never clobbers the
	// fresher written one), and the expired-path delete re-checks the
	// entry it is about to drop (so it never deletes a concurrently
	// refreshed one). Lookups stay outside the lock.
	mu      sync.Mutex
	stats   TTLStats
	flights map[string]*ttlFlight[V]
}

type ttlEntry[V any] struct {
	value   V
	fetched time.Time
}

// ttlFlight is one in-progress load. Concurrent readers of the same
// expired or missing key attach to the flight instead of issuing their
// own load; the leader publishes val/err before closing done.
// superseded (guarded by TTLCache.mu) is the per-key generation bump:
// a Write or Invalidate during the flight sets it, and the leader then
// discards its Put — the loaded value predates the write.
type ttlFlight[V any] struct {
	done       chan struct{}
	val        V
	err        error
	superseded bool
}

// TTLStats counts TTL-cache events. The counters conserve:
//
//	Reads == Hits + Coalesced + Loads + LoadErrors
//
// every read either hits (fresh entry), piggybacks on a flight, or
// leads a load that succeeds or errors. Expired and Misses are
// sub-classifications of the non-hit paths (entry aged out vs absent)
// and do not enter the identity.
type TTLStats struct {
	Reads      int64
	Hits       int64 // served within TTL, no storage contact
	Expired    int64 // entry present but aged out
	Misses     int64
	Loads      int64 // leader loads that succeeded
	LoadErrors int64 // leader loads that failed (nothing cached)
	Coalesced  int64 // reads that piggybacked on an in-flight load
}

// NewTTLCache builds a TTL cache with the given freshness bound.
func NewTTLCache[V any](cfg linkedcache.Config, ttl time.Duration, sizeOf func(key string, v V) int64) *TTLCache[V] {
	c := &TTLCache[V]{
		cache: linkedcache.New(cfg, func(k string, e ttlEntry[V]) int64 {
			return sizeOf(k, e.value) + 24
		}),
		now:     time.Now,
		flights: make(map[string]*ttlFlight[V]),
	}
	c.ttl.Store(int64(ttl))
	return c
}

// SetClock overrides the time source (tests).
func (c *TTLCache[V]) SetClock(now func() time.Time) { c.now = now }

// TTL returns the current freshness bound.
func (c *TTLCache[V]) TTL() time.Duration { return time.Duration(c.ttl.Load()) }

// SetTTL retunes the freshness bound live; the elastic controller
// trades staleness against refresh-load cost with it. Entries already
// cached are re-judged against the new bound on their next read.
// Non-positive bounds are ignored.
func (c *TTLCache[V]) SetTTL(d time.Duration) {
	if d > 0 {
		c.ttl.Store(int64(d))
	}
}

// Resize moves the cache's byte budget (evict-down on shrink),
// re-pricing its metered footprint.
func (c *TTLCache[V]) Resize(bytes int64) { c.cache.Resize(bytes) }

// Capacity returns the current byte budget.
func (c *TTLCache[V]) Capacity() int64 { return c.cache.Capacity() }

// UsedBytes returns the budgeted bytes of live entries.
func (c *TTLCache[V]) UsedBytes() int64 { return c.cache.UsedBytes() }

// SetBilledReplicas records how many application servers replicate this
// cache; the metered memory footprint is budget × replicas.
func (c *TTLCache[V]) SetBilledReplicas(n int) { c.cache.SetBilledReplicas(n) }

// Read serves key with staleness bounded by the TTL: a fresh-enough
// entry returns immediately; otherwise the value is reloaded. Concurrent
// reloads of the same key are coalesced into a single load — without
// this, every reader arriving in the window between the expiry Delete
// and the refill Put would issue its own storage load (the classic
// thundering herd on a hot key's TTL edge).
func (c *TTLCache[V]) Read(key string, load LoadFunc[V]) (V, bool, error) {
	var zero V
	ttl := c.TTL()
	c.count(func(s *TTLStats) { s.Reads++ })
	e, ok := c.cache.Get(key)
	if ok && c.now().Sub(e.fetched) < ttl {
		c.count(func(s *TTLStats) { s.Hits++ })
		return e.value, true, nil
	}

	c.mu.Lock()
	if ok {
		c.stats.Expired++
	} else {
		c.stats.Misses++
	}
	if fl, flying := c.flights[key]; flying {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return zero, false, fl.err
		}
		return fl.val, false, nil
	}
	if ok {
		// Drop only the entry we observed expire. Between the lock-free
		// Get above and here, a concurrent Write may have Put a fresh
		// entry; a blind Delete would throw that write away. Writes
		// mutate under mu, so re-reading under mu is authoritative.
		if cur, still := c.cache.Get(key); still {
			if c.now().Sub(cur.fetched) < ttl {
				// Refreshed while we decided: serve it, no load needed.
				c.stats.Hits++
				c.mu.Unlock()
				return cur.value, true, nil
			}
			c.cache.Delete(key)
		}
	}
	fl := &ttlFlight[V]{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	v, _, err := load(key)
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.stats.Loads++
		if !fl.superseded {
			c.cache.Put(key, ttlEntry[V]{value: v, fetched: c.now()})
		}
	} else {
		c.stats.LoadErrors++
	}
	c.mu.Unlock()
	fl.val, fl.err = v, err
	close(fl.done)
	if err != nil {
		return zero, false, err
	}
	return v, false, nil
}

// Write records a locally performed write, resetting the entry's age.
// A load flight in progress for the key is marked superseded: the
// flight's loaded value predates this write, so the leader discards its
// Put and the written value (and its age) stand.
func (c *TTLCache[V]) Write(key string, v V) {
	c.mu.Lock()
	if fl, flying := c.flights[key]; flying {
		fl.superseded = true
	}
	c.cache.Put(key, ttlEntry[V]{value: v, fetched: c.now()})
	c.mu.Unlock()
}

// Invalidate drops key. Like Write it supersedes any in-progress load:
// the flight's value was read before the invalidation's cause.
func (c *TTLCache[V]) Invalidate(key string) {
	c.mu.Lock()
	if fl, flying := c.flights[key]; flying {
		fl.superseded = true
	}
	c.cache.Delete(key)
	c.mu.Unlock()
}

// Stats returns a snapshot of counters.
func (c *TTLCache[V]) Stats() TTLStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *TTLCache[V]) count(fn func(*TTLStats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}
