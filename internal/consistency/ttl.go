package consistency

import (
	"sync"
	"time"

	"cachecost/internal/linkedcache"
)

// TTLCache is the industry-standard freshness compromise the paper's
// related work surveys (§7): entries are served without any storage
// contact until they age out. Reads are as cheap as an eventually
// consistent cache's — but unlike VersionedCache and OwnedCache, a read
// may return data up to TTL old. It completes the strategy spectrum the
// repository lets you price:
//
//	Linked            eventual consistency   cheapest
//	TTLCache          bounded staleness      cheap, staleness ≤ TTL
//	OwnedCache        linearizable           cheap while ownership holds
//	VersionedCache    linearizable           storage round trip per read
type TTLCache[V any] struct {
	cache *linkedcache.Cache[ttlEntry[V]]
	ttl   time.Duration
	now   func() time.Time

	mu      sync.Mutex
	stats   TTLStats
	flights map[string]*ttlFlight[V]
}

type ttlEntry[V any] struct {
	value   V
	fetched time.Time
}

// ttlFlight is one in-progress load. Concurrent readers of the same
// expired or missing key attach to the flight instead of issuing their
// own load; the leader publishes val/err before closing done.
type ttlFlight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// TTLStats counts TTL-cache events.
type TTLStats struct {
	Reads     int64
	Hits      int64 // served within TTL, no storage contact
	Expired   int64 // entry present but aged out
	Misses    int64
	Loads     int64
	Coalesced int64 // reads that piggybacked on an in-flight load
}

// NewTTLCache builds a TTL cache with the given freshness bound.
func NewTTLCache[V any](cfg linkedcache.Config, ttl time.Duration, sizeOf func(key string, v V) int64) *TTLCache[V] {
	return &TTLCache[V]{
		cache: linkedcache.New(cfg, func(k string, e ttlEntry[V]) int64 {
			return sizeOf(k, e.value) + 24
		}),
		ttl:     ttl,
		now:     time.Now,
		flights: make(map[string]*ttlFlight[V]),
	}
}

// SetClock overrides the time source (tests).
func (c *TTLCache[V]) SetClock(now func() time.Time) { c.now = now }

// Read serves key with staleness bounded by the TTL: a fresh-enough
// entry returns immediately; otherwise the value is reloaded. Concurrent
// reloads of the same key are coalesced into a single load — without
// this, every reader arriving in the window between the expiry Delete
// and the refill Put would issue its own storage load (the classic
// thundering herd on a hot key's TTL edge).
func (c *TTLCache[V]) Read(key string, load LoadFunc[V]) (V, bool, error) {
	var zero V
	c.count(func(s *TTLStats) { s.Reads++ })
	if e, ok := c.cache.Get(key); ok {
		if c.now().Sub(e.fetched) < c.ttl {
			c.count(func(s *TTLStats) { s.Hits++ })
			return e.value, true, nil
		}
		c.count(func(s *TTLStats) { s.Expired++ })
		c.cache.Delete(key)
	} else {
		c.count(func(s *TTLStats) { s.Misses++ })
	}

	c.mu.Lock()
	if fl, ok := c.flights[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return zero, false, fl.err
		}
		return fl.val, false, nil
	}
	fl := &ttlFlight[V]{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()

	v, _, err := load(key)
	if err == nil {
		c.cache.Put(key, ttlEntry[V]{value: v, fetched: c.now()})
	}
	fl.val, fl.err = v, err
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.stats.Loads++
	}
	c.mu.Unlock()
	close(fl.done)
	if err != nil {
		return zero, false, err
	}
	return v, false, nil
}

// Write records a locally performed write, resetting the entry's age.
func (c *TTLCache[V]) Write(key string, v V) {
	c.cache.Put(key, ttlEntry[V]{value: v, fetched: c.now()})
}

// Invalidate drops key.
func (c *TTLCache[V]) Invalidate(key string) { c.cache.Delete(key) }

// Stats returns a snapshot of counters.
func (c *TTLCache[V]) Stats() TTLStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *TTLCache[V]) count(fn func(*TTLStats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}
