package consistency_test

import (
	"fmt"

	"cachecost/internal/cluster"
	"cachecost/internal/consistency"
	"cachecost/internal/linkedcache"
)

// ExampleRunDelayedWriteScenario reproduces the paper's Figure 8 anomaly
// and its write-fencing fix.
func ExampleRunDelayedWriteScenario() {
	unfenced := consistency.RunDelayedWriteScenario(false)
	fenced := consistency.RunDelayedWriteScenario(true)
	fmt.Println("anomaly without fencing:", unfenced.Stale)
	fmt.Println("anomaly with fencing:   ", fenced.Stale)
	// Output:
	// anomaly without fencing: true
	// anomaly with fencing:    false
}

// ExampleOwnedCache shows the §6 design: the owner serves linearizable
// reads without any storage contact, because all writes route through it.
func ExampleOwnedCache() {
	// A toy versioned store.
	store := map[string]string{"k": "v1"}
	version := uint64(1)
	loads := 0
	load := func(key string) (string, uint64, error) {
		loads++
		return store[key], version, nil
	}

	sh := cluster.NewSharder(64)
	oc := consistency.NewOwnedCache[string]("app0", sh,
		linkedcache.Config{CapacityBytes: 1 << 20},
		func(k string, v string) int64 { return int64(len(v)) + 16 })

	oc.Read("k", load) // first read loads and takes ownership
	for i := 0; i < 99; i++ {
		oc.Read("k", load) // authority hits: no storage contact
	}
	oc.Write("k", "v2", func() (uint64, error) { // owner-routed write
		store["k"] = "v2"
		version++
		return version, nil
	})
	v, hit, _ := oc.Read("k", load)

	fmt.Printf("value=%s servedFromCache=%v storageLoads=%d\n", v, hit, loads)
	// Output:
	// value=v2 servedFromCache=true storageLoads=1
}

// ExampleVersionedCache shows the §5.5 baseline: linearizable, but every
// read pays a storage version check.
func ExampleVersionedCache() {
	store := map[string]string{"k": "v1"}
	version := uint64(1)
	checks := 0
	check := func(key string) (uint64, bool, error) {
		checks++
		return version, true, nil
	}
	load := func(key string) (string, uint64, error) {
		return store[key], version, nil
	}

	vc := consistency.NewVersionedCache[string](
		linkedcache.Config{CapacityBytes: 1 << 20},
		func(k string, v string) int64 { return int64(len(v)) + 16 })
	for i := 0; i < 100; i++ {
		vc.Read("k", check, load)
	}
	fmt.Printf("reads=100 storageChecks=%d\n", checks)
	// Output:
	// reads=100 storageChecks=100
}
