package consistency

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachecost/internal/linkedcache"
)

func newTTL(ttl time.Duration) (*TTLCache[string], *time.Time) {
	c := NewTTLCache[string](linkedcache.Config{CapacityBytes: 1 << 20}, ttl, strSize)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	return c, &now
}

func TestTTLServesWithinBound(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(time.Minute)

	if _, hit, err := c.Read("k", st.load); err != nil || hit {
		t.Fatalf("first read: hit=%v err=%v", hit, err)
	}
	loads := st.loads

	// Within the TTL: served from cache even though storage moved on.
	st.put("k", "v2")
	*now = now.Add(30 * time.Second)
	v, hit, err := c.Read("k", st.load)
	if err != nil || !hit || v != "v1" {
		t.Fatalf("bounded-stale read = %q hit=%v err=%v", v, hit, err)
	}
	if st.loads != loads {
		t.Fatal("within-TTL read must not contact storage")
	}

	// Past the TTL: refreshed.
	*now = now.Add(time.Minute)
	v, hit, err = c.Read("k", st.load)
	if err != nil || hit || v != "v2" {
		t.Fatalf("post-TTL read = %q hit=%v err=%v", v, hit, err)
	}
	stats := c.Stats()
	if stats.Hits != 1 || stats.Expired != 1 || stats.Misses != 1 || stats.Loads != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTTLStalenessNeverExceedsBound(t *testing.T) {
	// Property: for any interleaving of writes and clock advances, a TTL
	// read returns a value that was still current at some instant within
	// the last TTL — i.e. a served value may be stale, but only if it was
	// superseded less than TTL ago.
	const ttl = 10 * time.Second
	st := newFakeStore()
	c, now := newTTL(ttl)
	supersededAt := map[string]time.Time{}
	lastWritten := map[string]string{}

	write := func(k, v string) {
		if prev, ok := lastWritten[k]; ok {
			supersededAt[prev] = *now
		}
		st.put(k, v)
		lastWritten[k] = v
	}
	write("k", "v0")
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			write("k", fmt.Sprintf("v%d", i))
		}
		*now = now.Add(time.Duration(1+i%5) * time.Second)
		got, _, err := c.Read("k", st.load)
		if err != nil {
			t.Fatal(err)
		}
		if got != lastWritten["k"] {
			staleFor := now.Sub(supersededAt[got])
			if staleFor > ttl {
				t.Fatalf("iteration %d: served %q superseded %v ago (TTL %v)", i, got, staleFor, ttl)
			}
		}
	}
}

func TestTTLWriteResetsAge(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(time.Minute)
	c.Read("k", st.load)
	*now = now.Add(50 * time.Second)
	c.Write("k", "local")
	*now = now.Add(30 * time.Second) // 80s after load, 30s after write
	v, hit, err := c.Read("k", st.load)
	if err != nil || !hit || v != "local" {
		t.Fatalf("read after local write = %q hit=%v err=%v", v, hit, err)
	}
}

func TestTTLInvalidate(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, _ := newTTL(time.Minute)
	c.Read("k", st.load)
	c.Invalidate("k")
	if _, hit, _ := c.Read("k", st.load); hit {
		t.Fatal("invalidated entry should reload")
	}
}

// Regression: concurrent readers of the same expired key must coalesce
// onto a single load. Pre-fix, every reader arriving between the expiry
// Delete and the refill Put issued its own storage load (thundering
// herd). A gate in the load function holds the leader's load open until
// all readers have entered Read, so the pre-fix code would count N
// loads where the fixed code counts exactly 1.
func TestTTLCoalescesConcurrentLoads(t *testing.T) {
	const readers = 8
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(time.Minute)
	c.Read("k", st.load) // populate
	*now = now.Add(2 * time.Minute)

	var (
		mu      sync.Mutex
		loads   int
		entered = make(chan struct{}, readers)
		release = make(chan struct{})
	)
	gated := func(key string) (string, uint64, error) {
		mu.Lock()
		loads++
		mu.Unlock()
		entered <- struct{}{}
		<-release
		return st.load(key)
	}

	var wg sync.WaitGroup
	results := make([]string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Read("k", gated)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	<-entered // leader is inside the load; everyone else must wait on it
	// Give the remaining readers time to reach the flight map. They
	// cannot proceed past it until release, so after the leader returns
	// any reader that entered the coalescing window shares its result.
	for deadline := time.Now().Add(2 * time.Second); ; {
		c.mu.Lock()
		waiting := c.stats.Coalesced
		c.mu.Unlock()
		if waiting == readers-1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if loads != 1 {
		t.Fatalf("load invoked %d times for %d concurrent readers, want 1", loads, readers)
	}
	for i, v := range results {
		if v != "v1" {
			t.Fatalf("reader %d got %q, want v1", i, v)
		}
	}
	stats := c.Stats()
	if stats.Coalesced != readers-1 {
		t.Fatalf("Coalesced = %d, want %d", stats.Coalesced, readers-1)
	}
	if stats.Loads != 2 {
		t.Fatalf("Loads = %d, want 2 (populate + one coalesced reload)", stats.Loads)
	}
}

// A failed load must propagate its error to every coalesced reader and
// must not leave a stuck flight behind.
func TestTTLCoalescedLoadError(t *testing.T) {
	c, _ := newTTL(time.Minute)
	wantErr := fmt.Errorf("storage down")
	failing := func(string) (string, uint64, error) { return "", 0, wantErr }
	if _, _, err := c.Read("k", failing); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The flight must be cleaned up: a later read retries the load.
	st := newFakeStore()
	st.put("k", "v1")
	if v, _, err := c.Read("k", st.load); err != nil || v != "v1" {
		t.Fatalf("read after failed load = %q, %v", v, err)
	}
	if got := c.Stats().Loads; got != 1 {
		t.Fatalf("Loads = %d, want 1 (failed load not counted)", got)
	}
}

func TestTTLCheaperThanVersioned(t *testing.T) {
	// The trade the strategy spectrum prices: TTL reads skip the per-read
	// storage contact that VersionedCache pays.
	st := newFakeStore()
	st.put("k", "v")
	ttl, _ := newTTL(time.Hour)
	vc := newVC()
	for i := 0; i < 100; i++ {
		ttl.Read("k", st.load)
	}
	ttlContacts := st.loads + st.checks
	st.loads, st.checks = 0, 0
	for i := 0; i < 100; i++ {
		vc.Read("k", st.check, st.load)
	}
	vcContacts := st.loads + st.checks
	if ttlContacts != 1 {
		t.Fatalf("TTL contacts = %d, want 1", ttlContacts)
	}
	if vcContacts < 100 {
		t.Fatalf("versioned contacts = %d, want >= 100", vcContacts)
	}
}

// Regression: a Write landing while a load flight is in progress must
// not be clobbered by the flight leader's Put. Pre-fix, the leader
// unconditionally Put its (older) loaded value after the loader
// returned, overwriting the fresher written entry and resetting its age
// backwards.
func TestTTLWriteDuringFlightNotClobbered(t *testing.T) {
	c, _ := newTTL(time.Minute)
	gate := make(chan struct{})
	entered := make(chan struct{})
	blockingLoad := func(key string) (string, uint64, error) {
		close(entered)
		<-gate
		return "stale-loaded", 0, nil
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Leader: misses, starts the load, blocks in the loader.
		c.Read("k", blockingLoad)
	}()
	<-entered

	// The write lands mid-flight: it must win.
	c.Write("k", "fresh-written")
	close(gate)
	<-done

	v, hit, err := c.Read("k", func(string) (string, uint64, error) {
		t.Fatal("fresh written entry must be served without a load")
		return "", 0, nil
	})
	if err != nil || !hit || v != "fresh-written" {
		t.Fatalf("read after mid-flight write = %q hit=%v err=%v, want fresh-written hit",
			v, hit, err)
	}
}

// Invalidate during a flight must equally supersede the leader's Put —
// the loaded value was read before whatever caused the invalidation.
func TestTTLInvalidateDuringFlightSupersedes(t *testing.T) {
	c, _ := newTTL(time.Minute)
	gate := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Read("k", func(string) (string, uint64, error) {
			close(entered)
			<-gate
			return "stale-loaded", 0, nil
		})
	}()
	<-entered
	c.Invalidate("k")
	close(gate)
	<-done

	loads := 0
	v, hit, _ := c.Read("k", func(string) (string, uint64, error) {
		loads++
		return "reloaded", 0, nil
	})
	if hit || v != "reloaded" || loads != 1 {
		t.Fatalf("read after mid-flight invalidate = %q hit=%v loads=%d, want a fresh reload",
			v, hit, loads)
	}
}

// Regression: the expired-path delete must not drop a concurrently
// written fresh entry. The clock hook simulates the racing write in the
// exact window the pre-fix code left open — between Read observing the
// expired entry and its unconditional cache.Delete.
func TestTTLExpiredDeleteDoesNotDropConcurrentWrite(t *testing.T) {
	const ttl = 10 * time.Second
	c := NewTTLCache[string](linkedcache.Config{CapacityBytes: 1 << 20}, ttl, strSize)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	c.Write("k", "old")
	now = now.Add(ttl * 2) // "old" is expired

	// From the first freshness check on, the next clock reading performs
	// the racing write — exactly what a concurrent writer in the
	// Get→Delete window does. The guard keeps the hook from recursing
	// (Write itself reads the clock).
	fired := false
	c.SetClock(func() time.Time {
		if !fired {
			fired = true
			c.Write("k", "fresh")
		}
		return now
	})

	loads := 0
	v, _, err := c.Read("k", func(string) (string, uint64, error) {
		loads++
		return "loaded", 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != "fresh" || loads != 0 {
		t.Fatalf("read raced with write: got %q after %d loads, want %q with no load",
			v, loads, "fresh")
	}
	// And the written entry survived — it must still be served fresh.
	v, hit, _ := c.Read("k", func(string) (string, uint64, error) {
		t.Fatal("surviving written entry must be served without a load")
		return "", 0, nil
	})
	if !hit || v != "fresh" {
		t.Fatalf("follow-up read = %q hit=%v, want fresh hit", v, hit)
	}
}

// Regression: errored loads must be counted, so the stats conserve:
// Reads == Hits + Coalesced + Loads + LoadErrors. Pre-fix, failed loads
// vanished from the ledger.
func TestTTLStatsConservationWithLoadErrors(t *testing.T) {
	st := newFakeStore()
	c, now := newTTL(10 * time.Second)
	errLoad := func(string) (string, uint64, error) { return "", 0, fmt.Errorf("storage down") }

	st.put("a", "v")
	c.Read("a", st.load)        // miss -> load
	c.Read("a", st.load)        // hit
	c.Read("missing", errLoad)  // miss -> load error
	c.Read("missing", errLoad)  // still missing -> load error again
	*now = now.Add(time.Minute) // expire "a"
	c.Read("a", st.load)        // expired -> load
	c.Read("b", errLoad)        // miss -> error

	s := c.Stats()
	if s.LoadErrors != 3 {
		t.Fatalf("LoadErrors = %d, want 3 (stats: %+v)", s.LoadErrors, s)
	}
	if s.Reads != s.Hits+s.Coalesced+s.Loads+s.LoadErrors {
		t.Fatalf("conservation violated: Reads=%d != Hits=%d + Coalesced=%d + Loads=%d + LoadErrors=%d",
			s.Reads, s.Hits, s.Coalesced, s.Loads, s.LoadErrors)
	}
}

// Race coverage (run under -race): readers with a tiny TTL hammer the
// same keys as writers and invalidators. Afterwards the stats must
// conserve, and a final write must be durable against any straggler
// flight.
func TestTTLConcurrentReadWriteRace(t *testing.T) {
	c := NewTTLCache[string](linkedcache.Config{CapacityBytes: 1 << 20}, time.Microsecond, strSize)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", i%8)
				c.Read(key, func(k string) (string, uint64, error) {
					if i%7 == 0 {
						return "", 0, fmt.Errorf("flaky")
					}
					return "loaded", 0, nil
				})
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", i%8)
				if i%5 == 0 {
					c.Invalidate(key)
				} else {
					c.Write(key, "written")
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	s := c.Stats()
	if s.Reads != s.Hits+s.Coalesced+s.Loads+s.LoadErrors {
		t.Fatalf("conservation violated after race: %+v", s)
	}

	// With all flights drained, a write is durable: a fresh-TTL read
	// serves it without reloading.
	c.SetTTL(time.Minute)
	c.Write("k0", "final")
	v, hit, _ := c.Read("k0", func(string) (string, uint64, error) {
		t.Fatal("final write must be served without a load")
		return "", 0, nil
	})
	if !hit || v != "final" {
		t.Fatalf("post-race read = %q hit=%v, want final hit", v, hit)
	}
}

// SetTTL retunes the bound live: entries judged stale under a short TTL
// become servable again under a longer one and vice versa.
func TestTTLSetTTLRetunesLive(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(10 * time.Second)
	c.Read("k", st.load)
	*now = now.Add(30 * time.Second)

	// Under the original bound this read would reload; widen it first.
	c.SetTTL(time.Minute)
	loads := st.loads
	if _, hit, _ := c.Read("k", st.load); !hit || st.loads != loads {
		t.Fatal("widened TTL must serve the aged entry without a load")
	}

	// Tighten: the same entry is now stale again.
	c.SetTTL(time.Second)
	if _, hit, _ := c.Read("k", st.load); hit || st.loads != loads+1 {
		t.Fatal("tightened TTL must force a reload")
	}
	if c.TTL() != time.Second {
		t.Fatalf("TTL() = %v", c.TTL())
	}
	c.SetTTL(0) // ignored
	if c.TTL() != time.Second {
		t.Fatal("non-positive SetTTL must be ignored")
	}
}
