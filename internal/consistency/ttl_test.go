package consistency

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cachecost/internal/linkedcache"
)

func newTTL(ttl time.Duration) (*TTLCache[string], *time.Time) {
	c := NewTTLCache[string](linkedcache.Config{CapacityBytes: 1 << 20}, ttl, strSize)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })
	return c, &now
}

func TestTTLServesWithinBound(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(time.Minute)

	if _, hit, err := c.Read("k", st.load); err != nil || hit {
		t.Fatalf("first read: hit=%v err=%v", hit, err)
	}
	loads := st.loads

	// Within the TTL: served from cache even though storage moved on.
	st.put("k", "v2")
	*now = now.Add(30 * time.Second)
	v, hit, err := c.Read("k", st.load)
	if err != nil || !hit || v != "v1" {
		t.Fatalf("bounded-stale read = %q hit=%v err=%v", v, hit, err)
	}
	if st.loads != loads {
		t.Fatal("within-TTL read must not contact storage")
	}

	// Past the TTL: refreshed.
	*now = now.Add(time.Minute)
	v, hit, err = c.Read("k", st.load)
	if err != nil || hit || v != "v2" {
		t.Fatalf("post-TTL read = %q hit=%v err=%v", v, hit, err)
	}
	stats := c.Stats()
	if stats.Hits != 1 || stats.Expired != 1 || stats.Misses != 1 || stats.Loads != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTTLStalenessNeverExceedsBound(t *testing.T) {
	// Property: for any interleaving of writes and clock advances, a TTL
	// read returns a value that was still current at some instant within
	// the last TTL — i.e. a served value may be stale, but only if it was
	// superseded less than TTL ago.
	const ttl = 10 * time.Second
	st := newFakeStore()
	c, now := newTTL(ttl)
	supersededAt := map[string]time.Time{}
	lastWritten := map[string]string{}

	write := func(k, v string) {
		if prev, ok := lastWritten[k]; ok {
			supersededAt[prev] = *now
		}
		st.put(k, v)
		lastWritten[k] = v
	}
	write("k", "v0")
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			write("k", fmt.Sprintf("v%d", i))
		}
		*now = now.Add(time.Duration(1+i%5) * time.Second)
		got, _, err := c.Read("k", st.load)
		if err != nil {
			t.Fatal(err)
		}
		if got != lastWritten["k"] {
			staleFor := now.Sub(supersededAt[got])
			if staleFor > ttl {
				t.Fatalf("iteration %d: served %q superseded %v ago (TTL %v)", i, got, staleFor, ttl)
			}
		}
	}
}

func TestTTLWriteResetsAge(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(time.Minute)
	c.Read("k", st.load)
	*now = now.Add(50 * time.Second)
	c.Write("k", "local")
	*now = now.Add(30 * time.Second) // 80s after load, 30s after write
	v, hit, err := c.Read("k", st.load)
	if err != nil || !hit || v != "local" {
		t.Fatalf("read after local write = %q hit=%v err=%v", v, hit, err)
	}
}

func TestTTLInvalidate(t *testing.T) {
	st := newFakeStore()
	st.put("k", "v1")
	c, _ := newTTL(time.Minute)
	c.Read("k", st.load)
	c.Invalidate("k")
	if _, hit, _ := c.Read("k", st.load); hit {
		t.Fatal("invalidated entry should reload")
	}
}

// Regression: concurrent readers of the same expired key must coalesce
// onto a single load. Pre-fix, every reader arriving between the expiry
// Delete and the refill Put issued its own storage load (thundering
// herd). A gate in the load function holds the leader's load open until
// all readers have entered Read, so the pre-fix code would count N
// loads where the fixed code counts exactly 1.
func TestTTLCoalescesConcurrentLoads(t *testing.T) {
	const readers = 8
	st := newFakeStore()
	st.put("k", "v1")
	c, now := newTTL(time.Minute)
	c.Read("k", st.load) // populate
	*now = now.Add(2 * time.Minute)

	var (
		mu      sync.Mutex
		loads   int
		entered = make(chan struct{}, readers)
		release = make(chan struct{})
	)
	gated := func(key string) (string, uint64, error) {
		mu.Lock()
		loads++
		mu.Unlock()
		entered <- struct{}{}
		<-release
		return st.load(key)
	}

	var wg sync.WaitGroup
	results := make([]string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Read("k", gated)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	<-entered // leader is inside the load; everyone else must wait on it
	// Give the remaining readers time to reach the flight map. They
	// cannot proceed past it until release, so after the leader returns
	// any reader that entered the coalescing window shares its result.
	for deadline := time.Now().Add(2 * time.Second); ; {
		c.mu.Lock()
		waiting := c.stats.Coalesced
		c.mu.Unlock()
		if waiting == readers-1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if loads != 1 {
		t.Fatalf("load invoked %d times for %d concurrent readers, want 1", loads, readers)
	}
	for i, v := range results {
		if v != "v1" {
			t.Fatalf("reader %d got %q, want v1", i, v)
		}
	}
	stats := c.Stats()
	if stats.Coalesced != readers-1 {
		t.Fatalf("Coalesced = %d, want %d", stats.Coalesced, readers-1)
	}
	if stats.Loads != 2 {
		t.Fatalf("Loads = %d, want 2 (populate + one coalesced reload)", stats.Loads)
	}
}

// A failed load must propagate its error to every coalesced reader and
// must not leave a stuck flight behind.
func TestTTLCoalescedLoadError(t *testing.T) {
	c, _ := newTTL(time.Minute)
	wantErr := fmt.Errorf("storage down")
	failing := func(string) (string, uint64, error) { return "", 0, wantErr }
	if _, _, err := c.Read("k", failing); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The flight must be cleaned up: a later read retries the load.
	st := newFakeStore()
	st.put("k", "v1")
	if v, _, err := c.Read("k", st.load); err != nil || v != "v1" {
		t.Fatalf("read after failed load = %q, %v", v, err)
	}
	if got := c.Stats().Loads; got != 1 {
		t.Fatalf("Loads = %d, want 1 (failed load not counted)", got)
	}
}

func TestTTLCheaperThanVersioned(t *testing.T) {
	// The trade the strategy spectrum prices: TTL reads skip the per-read
	// storage contact that VersionedCache pays.
	st := newFakeStore()
	st.put("k", "v")
	ttl, _ := newTTL(time.Hour)
	vc := newVC()
	for i := 0; i < 100; i++ {
		ttl.Read("k", st.load)
	}
	ttlContacts := st.loads + st.checks
	st.loads, st.checks = 0, 0
	for i := 0; i < 100; i++ {
		vc.Read("k", st.check, st.load)
	}
	vcContacts := st.loads + st.checks
	if ttlContacts != 1 {
		t.Fatalf("TTL contacts = %d, want 1", ttlContacts)
	}
	if vcContacts < 100 {
		t.Fatalf("versioned contacts = %d, want >= 100", vcContacts)
	}
}
