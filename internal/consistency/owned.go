package consistency

import (
	"errors"
	"sync"

	"cachecost/internal/cluster"
	"cachecost/internal/linkedcache"
)

// ErrNotOwner is returned when a node operates on a key it does not own.
// The serving tier should route the request to the current owner.
var ErrNotOwner = errors.New("consistency: not the owner of this key")

// OwnedStats counts ownership-cache events.
type OwnedStats struct {
	Reads          int64
	AuthorityHits  int64 // served from cache with no storage contact
	ValidatedReads int64 // had to (re)validate against storage
	Loads          int64
	Writes         int64
	Revoked        int64 // entries dropped by resharding
}

// ownedEntry is a cached value with the ownership assignment under which
// it became authoritative.
type ownedEntry[V any] struct {
	value      V
	version    uint64
	assignment cluster.Assignment
}

// OwnedCache is the §6 design: a linked cache that, holding a valid
// ownership assignment from the auto-sharder and receiving all writes for
// its keys, serves linearizable reads without any per-read storage
// round trip.
//
// Correctness argument: while the assignment generation is current, every
// write to an owned key goes through this instance (Write), which updates
// storage and cache atomically under the per-key owner serialization; a
// resharding bumps the generation, which both invalidates outstanding
// assignments (checked on every read) and drops moved entries. The
// remaining hazard — a write delayed from before the reshard — is closed
// by write fencing (FencedStore).
type OwnedCache[V any] struct {
	self    string
	sharder *cluster.Sharder
	cache   *linkedcache.Cache[ownedEntry[V]]

	mu    sync.Mutex
	stats OwnedStats
}

// NewOwnedCache registers self with the sharder and wires reshard
// eviction.
func NewOwnedCache[V any](self string, sharder *cluster.Sharder, cfg linkedcache.Config, sizeOf func(key string, v V) int64) *OwnedCache[V] {
	c := &OwnedCache[V]{
		self:    self,
		sharder: sharder,
		cache: linkedcache.New(cfg, func(k string, e ownedEntry[V]) int64 {
			return sizeOf(k, e.value) + 32
		}),
	}
	sharder.Watch(func(moved []string, from, to string) {
		if from != self {
			return
		}
		for _, k := range moved {
			if c.cache.Delete(k) {
				c.count(func(s *OwnedStats) { s.Revoked++ })
			}
		}
	})
	sharder.Join(self)
	return c
}

// Owns reports whether this instance currently owns key.
func (c *OwnedCache[V]) Owns(key string) bool { return c.sharder.Owner(key) == c.self }

// Read serves key linearizably. If the cached entry is authoritative
// under a still-valid assignment, it is returned with no storage contact;
// otherwise the value is loaded and becomes authoritative under a fresh
// assignment.
func (c *OwnedCache[V]) Read(key string, load LoadFunc[V]) (V, bool, error) {
	var zero V
	if !c.Owns(key) {
		return zero, false, ErrNotOwner
	}
	c.count(func(s *OwnedStats) { s.Reads++ })
	if e, ok := c.cache.Get(key); ok && c.sharder.Valid(e.assignment) {
		c.count(func(s *OwnedStats) { s.AuthorityHits++ })
		return e.value, true, nil
	}
	// (Re)establish authority: take a fresh assignment, then load. Order
	// matters — if a reshard lands between the load and the insert, the
	// stale assignment makes the entry non-authoritative and the next
	// read revalidates.
	assignment := c.sharder.Assign(key)
	c.count(func(s *OwnedStats) { s.ValidatedReads++ })
	v, ver, err := load(key)
	if err != nil {
		return zero, false, err
	}
	c.count(func(s *OwnedStats) { s.Loads++ })
	c.cache.Put(key, ownedEntry[V]{value: v, version: ver, assignment: assignment})
	return v, false, nil
}

// Write performs an owner-routed write: store persists the value (and
// returns its new version); the cache entry is refreshed under the
// current assignment. All writes for owned keys MUST come through here —
// that is what lets reads skip validation.
func (c *OwnedCache[V]) Write(key string, v V, store func() (uint64, error)) error {
	if !c.Owns(key) {
		return ErrNotOwner
	}
	assignment := c.sharder.Assign(key)
	ver, err := store()
	if err != nil {
		return err
	}
	c.count(func(s *OwnedStats) { s.Writes++ })
	c.cache.Put(key, ownedEntry[V]{value: v, version: ver, assignment: assignment})
	return nil
}

// Invalidate drops key locally.
func (c *OwnedCache[V]) Invalidate(key string) { c.cache.Delete(key) }

// Stats returns a snapshot of counters.
func (c *OwnedCache[V]) Stats() OwnedStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *OwnedCache[V]) count(fn func(*OwnedStats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}
