package cachecost_test

// One benchmark per paper table/figure, plus per-operation benchmarks for
// each caching architecture. Figure benchmarks regenerate the figure's
// rows at reduced scale each iteration and report the headline number as
// a custom metric; run them with
//
//	go test -bench=. -benchmem
//
// and see cmd/costbench for full-scale regeneration.

import (
	"testing"
	"time"

	"cachecost/internal/core"
	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/trace"
	"cachecost/internal/workload"
)

func benchOpts() core.FigOptions {
	return core.FigOptions{Ops: 400, Warmup: 150, Keys: 300, Tables: 60, Seed: 1}
}

// benchFigure regenerates one figure per iteration.
func benchFigure(b *testing.B, run func(core.FigOptions) (*core.Table, error)) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFig2a(b *testing.B)       { benchFigure(b, core.Fig2a) }
func BenchmarkFig2b(b *testing.B)       { benchFigure(b, core.Fig2b) }
func BenchmarkFig3(b *testing.B)        { benchFigure(b, core.Fig3) }
func BenchmarkFig4a(b *testing.B)       { benchFigure(b, core.Fig4a) }
func BenchmarkFig4b(b *testing.B)       { benchFigure(b, core.Fig4b) }
func BenchmarkFig5a(b *testing.B)       { benchFigure(b, core.Fig5a) }
func BenchmarkFig5b(b *testing.B)       { benchFigure(b, core.Fig5b) }
func BenchmarkFig6(b *testing.B)        { benchFigure(b, core.Fig6) }
func BenchmarkFig7(b *testing.B)        { benchFigure(b, core.Fig7) }
func BenchmarkFig8(b *testing.B)        { benchFigure(b, core.Fig8) }
func BenchmarkConsistency(b *testing.B) { benchFigure(b, core.FigConsistency) }
func BenchmarkMarginal(b *testing.B)    { benchFigure(b, core.FigMarginal) }

// benchFig4aAt regenerates fig4a with the concurrent driver at the given
// parallelism; wall-clock per regeneration is the ns/op, so comparing
// Fig4aP1 with Fig4aP4 measures the driver's parallel speedup on this
// machine (bounded by its core count).
func benchFig4aAt(b *testing.B, par int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Parallelism = par
		if _, err := core.Fig4a(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aP1(b *testing.B) { benchFig4aAt(b, 1) }
func BenchmarkFig4aP4(b *testing.B) { benchFig4aAt(b, 4) }

// benchArch measures per-request latency and cost of one architecture
// under the standard synthetic workload, reporting $/Mreq alongside
// ns/op.
func benchArch(b *testing.B, arch core.Arch, valueSize int) {
	b.Helper()
	m := meter.NewMeter()
	gen := workload.NewSynthetic(workload.SyntheticConfig{
		Keys: 300, Alpha: 1.2, ReadRatio: 0.9, ValueSize: valueSize, Seed: 1,
	})
	ws := int64(300 * valueSize)
	svc, err := core.BuildKVService(core.ServiceConfig{
		Arch:              arch,
		Meter:             m,
		StorageCacheBytes: ws * 15 / 100,
		AppCacheBytes:     ws * 60 / 100,
		RemoteCacheBytes:  ws * 60 / 100,
	}, gen)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the caches.
	for i := 0; i < 400; i++ {
		op := gen.Next()
		if op.Kind == workload.Read {
			svc.Read(op.Key)
		} else {
			svc.Write(op.Key, core.ValueFor(op.Key, op.ValueSize))
		}
	}
	m.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		var err error
		if op.Kind == workload.Read {
			_, err = svc.Read(op.Key)
		} else {
			err = svc.Write(op.Key, core.ValueFor(op.Key, op.ValueSize))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	m.AddRequests(int64(b.N))
	rep := meter.BuildReport(m, meter.GCP)
	b.ReportMetric(rep.CostPerMillionRequests()*1e6, "µ$/Mreq")
}

func BenchmarkArchBase1KB(b *testing.B)          { benchArch(b, core.Base, 1<<10) }
func BenchmarkArchRemote1KB(b *testing.B)        { benchArch(b, core.Remote, 1<<10) }
func BenchmarkArchLinked1KB(b *testing.B)        { benchArch(b, core.Linked, 1<<10) }
func BenchmarkArchLinkedVersion1KB(b *testing.B) { benchArch(b, core.LinkedVersion, 1<<10) }
func BenchmarkArchLinkedOwned1KB(b *testing.B)   { benchArch(b, core.LinkedOwned, 1<<10) }
func BenchmarkArchBase32KB(b *testing.B)         { benchArch(b, core.Base, 32<<10) }
func BenchmarkArchLinked32KB(b *testing.B)       { benchArch(b, core.Linked, 32<<10) }

// BenchmarkVersionCheck isolates the §5.5 cost: the storage-side price of
// one consistency version check.
func BenchmarkVersionCheck(b *testing.B) {
	m := meter.NewMeter()
	gen := workload.NewSynthetic(workload.SyntheticConfig{Keys: 300, ValueSize: 1 << 10, Seed: 1})
	svc, err := core.BuildKVService(core.ServiceConfig{
		Arch:  core.LinkedVersion,
		Meter: m,
	}, gen)
	if err != nil {
		b.Fatal(err)
	}
	key := workload.KeyName(1)
	svc.Read(key) // warm: subsequent reads are pure version checks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Read(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOwnershipConsistent isolates the §6 design: consistent reads
// without the per-read check.
func BenchmarkOwnershipConsistent(b *testing.B) {
	m := meter.NewMeter()
	gen := workload.NewSynthetic(workload.SyntheticConfig{Keys: 300, ValueSize: 1 << 10, Seed: 1})
	svc, err := core.BuildKVService(core.ServiceConfig{
		Arch:  core.LinkedOwned,
		Meter: m,
	}, gen)
	if err != nil {
		b.Fatal(err)
	}
	key := workload.KeyName(1)
	svc.Read(key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Read(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlightUnsampledFastPath measures the flight recorder's
// per-request overhead for ordinary traffic: a completion that is
// neither slow nor a bad outcome must stay 0 allocs/op (run with
// -benchmem; TestFastPathZeroAllocs in internal/flight pins the same
// property as a hard assertion).
func BenchmarkFlightUnsampledFastPath(b *testing.B) {
	rec := flight.New(flight.Config{SlowestK: 4, RingSize: 1024})
	start := time.Now()
	// Park the retention threshold far above the benchmarked requests.
	for i := 0; i < 8; i++ {
		sc := rec.Begin(trace.SpanContext{})
		rec.Done(sc, "Bench", "bench.Op", start, time.Second, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := rec.Begin(trace.SpanContext{})
		rec.Done(sc, "Bench", "bench.Op", start, time.Microsecond, nil)
	}
}

// BenchmarkModelEvaluation measures the analytic model itself (used
// inside optimizers and sweeps).
func BenchmarkModelEvaluation(b *testing.B) {
	m := core.DefaultModel(1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TotalCost(float64(i%16)*float64(1<<30), 1<<30)
	}
}

// BenchmarkRichObjectRead measures a full 8-query getTable against the
// governance schema (the §5.4 read path), per operation.
func BenchmarkRichObjectRead(b *testing.B) {
	m := meter.NewMeter()
	gen := workload.NewUnity(workload.UnityConfig{Tables: 60, Seed: 1})
	svc, err := core.NewCatalogService(core.CatalogServiceConfig{
		ServiceConfig: core.ServiceConfig{Arch: core.Base, Meter: m},
		Mode:          core.ModeObject,
		Tables:        60,
		StatsBytes:    8 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		if _, err := svc.Read(op.Key); err != nil {
			b.Fatal(err)
		}
	}
}
