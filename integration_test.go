package cachecost_test

// End-to-end integration tests: the cluster binaries' components wired
// over real TCP sockets in one process — storeserver's node, cacheserver's
// node and the application tier talking through actual connections, driven
// by a loadgen-style client.

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"cachecost/internal/core"
	"cachecost/internal/meter"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/storage"
	"cachecost/internal/wire"
	"cachecost/internal/workload"
)

// listen starts l on an ephemeral port and serves srv on it.
func listen(t *testing.T, srv *rpc.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

func TestClusterOverTCP(t *testing.T) {
	for _, arch := range []core.Arch{core.Base, core.Remote, core.Linked} {
		t.Run(arch.String(), func(t *testing.T) {
			// Storage node process.
			storeMeter := meter.NewMeter()
			node := storage.NewNode(storage.Config{
				Replicas:        3,
				BlockCacheBytes: 8 << 20,
				Meter:           storeMeter,
			})
			storeAddr := listen(t, node.Server())

			// Cache node process.
			cacheSrv := remotecache.NewServer(remotecache.ServerConfig{CapacityBytes: 8 << 20})
			cacheAddr := listen(t, cacheSrv.RPCServer())

			// Application tier, connected over TCP.
			appMeter := meter.NewMeter()
			dbConn, err := rpc.Dial(storeAddr, appMeter.Component("app"), meter.NewBurner(), rpc.DefaultCost)
			if err != nil {
				t.Fatal(err)
			}
			eps := core.RemoteEndpoints{DB: dbConn}
			if arch == core.Remote {
				cacheConn, err := rpc.Dial(cacheAddr, appMeter.Component("app"), meter.NewBurner(), rpc.DefaultCost)
				if err != nil {
					t.Fatal(err)
				}
				eps.Cache = cacheConn
			}
			svc, err := core.NewKVServiceRemote(core.ServiceConfig{
				Arch:          arch,
				Meter:         appMeter,
				AppCacheBytes: 4 << 20,
			}, eps)
			if err != nil {
				t.Fatal(err)
			}

			// Preload through SQL over the wire.
			items := make([]core.PreloadItem, 100)
			for i := range items {
				items[i] = core.PreloadItem{Key: workload.KeyName(i), Size: 512}
			}
			if err := svc.Preload(items); err != nil {
				t.Fatal(err)
			}

			// Front door over TCP too, driven concurrently.
			appAddr := listen(t, svc.Front())
			client, err := rpc.Dial(appAddr, nil, nil, rpc.CostModel{})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			var wg sync.WaitGroup
			errs := make(chan error, 4)
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := workload.KeyName((w*50 + i) % 100)
						respBody, err := client.Call("app.Read",
							wire.Marshal(&remotecache.GetRequest{Key: key}))
						if err != nil {
							errs <- fmt.Errorf("read %s: %w", key, err)
							return
						}
						var resp remotecache.GetResponse
						if err := wire.Unmarshal(respBody, &resp); err != nil {
							errs <- err
							return
						}
						want := core.Digest(core.ValueFor(key, 512))
						if !bytes.Equal(resp.Value, want) {
							errs <- fmt.Errorf("digest mismatch for %s over TCP", key)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Writes propagate through the whole stack.
			newVal := core.ValueFor("fresh", 256)
			if _, err := client.Call("app.Write", wire.Marshal(&remotecache.SetRequest{
				Key: workload.KeyName(1), Value: newVal,
			})); err != nil {
				t.Fatal(err)
			}
			respBody, err := client.Call("app.Read",
				wire.Marshal(&remotecache.GetRequest{Key: workload.KeyName(1)}))
			if err != nil {
				t.Fatal(err)
			}
			var resp remotecache.GetResponse
			if err := wire.Unmarshal(respBody, &resp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resp.Value, core.Digest(newVal)) {
				t.Fatal("write not visible over TCP")
			}

			// Both tiers metered real work.
			if storeMeter.Component("storage.sql").Busy() <= 0 {
				t.Error("storage tier should have metered CPU")
			}
			if appMeter.Component("app").Busy() <= 0 {
				t.Error("app tier should have metered CPU")
			}
		})
	}
}

func TestClusterStoreFailover(t *testing.T) {
	storeMeter := meter.NewMeter()
	node := storage.NewNode(storage.Config{Replicas: 3, BlockCacheBytes: 4 << 20, Meter: storeMeter})
	storeAddr := listen(t, node.Server())

	appMeter := meter.NewMeter()
	dbConn, err := rpc.Dial(storeAddr, nil, nil, rpc.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewKVServiceRemote(core.ServiceConfig{
		Arch:  core.Linked,
		Meter: appMeter,
	}, core.RemoteEndpoints{DB: dbConn})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Preload([]core.PreloadItem{{Key: "k", Size: 64}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Read("k"); err != nil {
		t.Fatal(err)
	}

	// Kill the storage leader mid-flight: cached reads keep working,
	// uncached reads fail until a new leader is elected.
	node.Group().FailNode(0)
	if _, err := svc.Read("k"); err != nil {
		t.Fatalf("cached read should survive storage failover: %v", err)
	}
	if err := node.Group().ElectLeader(1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Write("k", core.ValueFor("k2", 64)); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	got, err := svc.Read("k")
	if err != nil || !bytes.Equal(got, core.Digest(core.ValueFor("k2", 64))) {
		t.Fatalf("read after failover: %v", err)
	}
}
