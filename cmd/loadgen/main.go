// Command loadgen drives an appserver with one of the paper's workloads
// over real sockets and reports throughput and latency percentiles.
//
// The default mode is closed-loop: N workers, each issuing the next op
// when the last returns. With -arrival it switches to open-loop: a
// deterministic seeded schedule fixes every op's intended arrival before
// the run, a dispatcher releases ops at those instants into bounded
// per-worker queues, and latency is reported against BOTH clocks — the
// intended arrival (coordinated-omission-free) and the send instant (the
// closed-loop blind spot, shown for contrast).
//
//	loadgen -target localhost:7001 -workload synthetic -ops 50000 -concurrency 8
//	loadgen -target localhost:7001 -arrival poisson -rate 20000 -slo 10ms -ops 50000
//	loadgen -target localhost:7001 -trace trace.bin -ops 50000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachecost/internal/core"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
	"cachecost/internal/workload"
)

func main() {
	var (
		target      = flag.String("target", "localhost:7001", "appserver address")
		wl          = flag.String("workload", "synthetic", "workload: synthetic|meta")
		keys        = flag.Int("keys", 2000, "key population (must match appserver preload)")
		readRatio   = flag.Float64("readratio", 0.9, "read fraction (synthetic)")
		alpha       = flag.Float64("alpha", 1.2, "zipfian skew")
		valueSize   = flag.Int("valuesize", 1024, "value size (synthetic)")
		ops         = flag.Int("ops", 20000, "operations to issue")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		seed        = flag.Int64("seed", 1, "workload seed")
		traceFile   = flag.String("trace", "", "replay a recorded trace (see cmd/tracegen)")
		metrics     = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz and /debug/pprof on this address")
		arrival     = flag.String("arrival", "", "open-loop arrival process: poisson|bursty|diurnal (empty = closed loop)")
		rate        = flag.Float64("rate", 0, "open-loop mean offered rate in ops/sec (required with -arrival)")
		slo         = flag.Duration("slo", 0, "open-loop per-op latency budget, propagated as a deadline (0 = none)")
		laneDepth   = flag.Int("lanedepth", 1024, "open-loop bound on each worker's queue; arrivals past it are shed client-side")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	// Fail startup on a bad -metrics address, before issuing any load.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{Registry: reg})
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer msrv.Close()
		log.Printf("loadgen: serving metrics on http://%s/metrics", msrv.Addr)
	}

	var gen workload.Generator
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		rep, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		gen = rep
	} else {
		gen = buildGenerator(*wl, *keys, *alpha, *readRatio, *valueSize, *seed)
	}
	if *arrival != "" {
		proc, err := workload.ParseArrivalProcess(*arrival)
		if err != nil {
			log.Fatalf("loadgen: -arrival: %v", err)
		}
		if *rate <= 0 {
			log.Fatal("loadgen: -arrival requires a positive -rate")
		}
		runOpenLoop(gen, reg, *target, *ops, *concurrency, workload.ArrivalConfig{
			Process: proc, Rate: *rate, Seed: *seed,
		}, *slo, *laneDepth)
		return
	}
	runLoad(gen, reg, *target, *ops, *concurrency)
}

func buildGenerator(wl string, keys int, alpha, readRatio float64, valueSize int, seed int64) workload.Generator {
	switch wl {
	case "synthetic":
		return workload.NewSynthetic(workload.SyntheticConfig{
			Keys: keys, Alpha: alpha, ReadRatio: readRatio, ValueSize: valueSize, Seed: seed,
		})
	case "meta":
		return workload.NewMetaKV(workload.MetaKVConfig{Keys: keys, Seed: seed})
	default:
		log.Fatalf("loadgen: unknown workload %q", wl)
		return nil
	}
}

func runLoad(gen workload.Generator, reg *telemetry.Registry, target string, ops, concurrency int) {
	// Pre-draw the operation stream (generators are not concurrency-safe
	// and pre-drawing keeps the hot loop allocation-light).
	stream := make([]workload.Op, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}

	// Per-op latency feeds the registry so a scrape mid-run reports live
	// percentiles; the client connections feed per-message rpc metrics.
	reqHist := reg.Histogram("request.latency", "seconds")
	connMetrics := rpc.NewMetrics(reg, "tcp")
	conns := make([]*rpc.Client, concurrency)
	for i := range conns {
		c, err := rpc.Dial(target, nil, nil, rpc.CostModel{})
		if err != nil {
			log.Fatalf("loadgen: dial: %v", err)
		}
		c.SetMetrics(connMetrics)
		conns[i] = c
		defer c.Close()
	}

	var next atomic.Int64
	var failures atomic.Int64
	latencies := make([][]time.Duration, concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := conns[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				op := stream[i]
				start := time.Now()
				var err error
				if op.Kind == workload.Read {
					_, err = conn.Call("app.Read", wire.Marshal(&remotecache.GetRequest{Key: op.Key}))
				} else {
					_, err = conn.Call("app.Write", wire.Marshal(&remotecache.SetRequest{
						Key:   op.Key,
						Value: core.ValueFor(op.Key, op.ValueSize),
					}))
				}
				if err != nil {
					failures.Add(1)
					continue
				}
				d := time.Since(start)
				reqHist.Observe(int64(d))
				latencies[w] = append(latencies[w], d)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Printf("workload=%s ops=%d failures=%d elapsed=%v\n",
		gen.Name(), len(all), failures.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
}

// timedOp is one dispatched open-loop operation.
type timedOp struct {
	op       workload.Op
	intended time.Time
	deadline time.Time
}

// callOp issues one op on conn, attaching the deadline (when set) to the
// wire trace context so the server's admission gate can act on it.
func callOp(conn *rpc.Client, op workload.Op, deadline time.Time) error {
	var sc trace.SpanContext
	if !deadline.IsZero() {
		sc = sc.WithDeadline(deadline)
	}
	var err error
	if op.Kind == workload.Read {
		_, err = conn.CallCtx(sc, "app.Read", wire.Marshal(&remotecache.GetRequest{Key: op.Key}))
	} else {
		_, err = conn.CallCtx(sc, "app.Write", wire.Marshal(&remotecache.SetRequest{
			Key:   op.Key,
			Value: core.ValueFor(op.Key, op.ValueSize),
		}))
	}
	return err
}

// runOpenLoop drives the target from a deterministic arrival schedule:
// the same open-loop mechanics as the in-process experiment driver
// (bounded lanes, dispatcher pacing, dual-clock recording), over real
// sockets.
func runOpenLoop(gen workload.Generator, reg *telemetry.Registry, target string, ops, lanes int, acfg workload.ArrivalConfig, slo time.Duration, depth int) {
	stream := make([]workload.Op, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}
	sched, err := workload.BuildSchedule(acfg, ops)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	reqHist := reg.Histogram("request.latency", "seconds")
	connMetrics := rpc.NewMetrics(reg, "tcp")
	conns := make([]*rpc.Client, lanes)
	for i := range conns {
		c, err := rpc.Dial(target, nil, nil, rpc.CostModel{})
		if err != nil {
			log.Fatalf("loadgen: dial: %v", err)
		}
		c.SetMetrics(connMetrics)
		conns[i] = c
		defer c.Close()
	}

	type laneRec struct {
		intended, send []time.Duration
		failures       int64
		executed       int
	}
	recs := make([]laneRec, lanes)
	chans := make([]chan timedOp, lanes)
	var wg sync.WaitGroup
	for w := 0; w < lanes; w++ {
		chans[w] = make(chan timedOp, depth)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := &recs[w]
			for to := range chans[w] {
				sendT0 := time.Now()
				if err := callOp(conns[w], to.op, to.deadline); err != nil {
					rec.failures++
					continue
				}
				done := time.Now()
				rec.executed++
				dIntended := done.Sub(to.intended)
				reqHist.Observe(int64(dIntended))
				rec.intended = append(rec.intended, dIntended)
				rec.send = append(rec.send, done.Sub(sendT0))
			}
		}(w)
	}

	// Dispatch each op at its intended instant; a full lane sheds the op
	// client-side (bounded buffers keep a dead server from eating RAM).
	var clientShed int64
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		tgt := t0.Add(sched.Offset(i))
		for {
			rem := time.Until(tgt)
			if rem <= 0 {
				break
			}
			if rem > 200*time.Microsecond {
				time.Sleep(rem - 100*time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
		var deadline time.Time
		if slo > 0 {
			deadline = tgt.Add(slo)
		}
		select {
		case chans[i%lanes] <- timedOp{op: stream[i], intended: tgt, deadline: deadline}:
		default:
			clientShed++
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	wall := time.Since(t0)

	var intended, send []time.Duration
	var failures int64
	executed := 0
	for i := range recs {
		intended = append(intended, recs[i].intended...)
		send = append(send, recs[i].send...)
		failures += recs[i].failures
		executed += recs[i].executed
	}
	sort.Slice(intended, func(i, j int) bool { return intended[i] < intended[j] })
	sort.Slice(send, func(i, j int) bool { return send[i] < send[j] })
	pct := func(s []time.Duration, p float64) time.Duration {
		if len(s) == 0 {
			return 0
		}
		return s[int(p*float64(len(s)-1))]
	}

	fmt.Printf("workload=%s arrival=%s offered=%d executed=%d client_shed=%d failures=%d\n",
		gen.Name(), sched.Name(), ops, executed, clientShed, failures)
	fmt.Printf("offered rate: %.0f ops/s (schedule span %v, wall %v)\n",
		sched.OfferedQPS(), sched.Span().Round(time.Millisecond), wall.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s (executed / schedule span)\n",
		float64(executed)/sched.Span().Seconds())
	fmt.Printf("latency (intended-arrival clock, CO-free): p50=%v p90=%v p99=%v max=%v\n",
		pct(intended, 0.50), pct(intended, 0.90), pct(intended, 0.99), pct(intended, 1.0))
	fmt.Printf("latency (send clock, for contrast):        p50=%v p90=%v p99=%v max=%v\n",
		pct(send, 0.50), pct(send, 0.90), pct(send, 0.99), pct(send, 1.0))
	if slo > 0 {
		late := 0
		for _, d := range intended {
			if d > slo {
				late++
			}
		}
		fmt.Printf("slo=%v: %d/%d executed ops (%.2f%%) finished past budget\n",
			slo, late, executed, 100*float64(late)/float64(max(executed, 1)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
