// Command loadgen drives an appserver with one of the paper's workloads
// over real sockets and reports throughput and latency percentiles.
//
// The default mode is closed-loop: N workers, each issuing the next op
// when the last returns. With -arrival it switches to open-loop: a
// deterministic seeded schedule fixes every op's intended arrival before
// the run, a dispatcher releases ops at those instants into bounded
// per-worker queues, and latency is reported against BOTH clocks — the
// intended arrival (coordinated-omission-free) and the send instant (the
// closed-loop blind spot, shown for contrast).
//
//	loadgen -target localhost:7001 -workload synthetic -ops 50000 -concurrency 8
//	loadgen -target localhost:7001 -arrival poisson -rate 20000 -slo 10ms -ops 50000
//	loadgen -target localhost:7001 -trace trace.bin -ops 50000
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachecost/internal/core"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/wire"
	"cachecost/internal/workload"
)

func main() {
	var (
		target      = flag.String("target", "localhost:7001", "appserver address")
		wl          = flag.String("workload", "synthetic", "workload: synthetic|meta")
		keys        = flag.Int("keys", 2000, "key population (must match appserver preload)")
		readRatio   = flag.Float64("readratio", 0.9, "read fraction (synthetic)")
		alpha       = flag.Float64("alpha", 1.2, "zipfian skew")
		valueSize   = flag.Int("valuesize", 1024, "value size (synthetic)")
		ops         = flag.Int("ops", 20000, "operations to issue")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		seed        = flag.Int64("seed", 1, "workload seed")
		traceFile   = flag.String("trace", "", "replay a recorded trace (see cmd/tracegen)")
		metrics     = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz and /debug/pprof on this address")
		arrival     = flag.String("arrival", "", "open-loop arrival process: poisson|bursty|diurnal (empty = closed loop)")
		rate        = flag.Float64("rate", 0, "open-loop mean offered rate in ops/sec (required with -arrival)")
		slo         = flag.Duration("slo", 0, "open-loop per-op latency budget, propagated as a deadline (0 = none)")
		laneDepth   = flag.Int("lanedepth", 1024, "open-loop bound on each worker's queue; arrivals past it are shed client-side")
		sample      = flag.Int("sample", 64, "stamp a wire trace id on 1 in N ops so warnings correlate with server-side /debug/requests exemplars (0 = off)")
		logfmt      = flag.String("logfmt", "text", "log format: text|json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(*logfmt, "loadgen")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	reg := telemetry.NewRegistry()
	// Fail startup on a bad -metrics address, before issuing any load.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{Registry: reg})
		if err != nil {
			fatal("metrics endpoint", "err", err)
		}
		defer msrv.Close()
		logger.Info("serving metrics", "url", "http://"+msrv.Addr+"/metrics")
	}

	var gen workload.Generator
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal("open trace", "err", err)
		}
		rep, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal("read trace", "err", err)
		}
		gen = rep
	} else {
		gen = buildGenerator(fatal, *wl, *keys, *alpha, *readRatio, *valueSize, *seed)
	}
	ids := newIDStamper(*sample)
	if *arrival != "" {
		proc, err := workload.ParseArrivalProcess(*arrival)
		if err != nil {
			fatal("bad -arrival", "err", err)
		}
		if *rate <= 0 {
			fatal("-arrival requires a positive -rate")
		}
		runOpenLoop(logger, fatal, ids, gen, reg, *target, *ops, *concurrency, workload.ArrivalConfig{
			Process: proc, Rate: *rate, Seed: *seed,
		}, *slo, *laneDepth)
		return
	}
	runLoad(logger, fatal, ids, gen, reg, *target, *ops, *concurrency)
}

func buildGenerator(fatal func(string, ...any), wl string, keys int, alpha, readRatio float64, valueSize int, seed int64) workload.Generator {
	switch wl {
	case "synthetic":
		return workload.NewSynthetic(workload.SyntheticConfig{
			Keys: keys, Alpha: alpha, ReadRatio: readRatio, ValueSize: valueSize, Seed: seed,
		})
	case "meta":
		return workload.NewMetaKV(workload.MetaKVConfig{Keys: keys, Seed: seed})
	default:
		fatal("unknown workload", "workload", wl)
		return nil
	}
}

// idStamper fabricates wire trace identities for 1 in N ops, so the
// server joins them, its flight recorder stamps them on any exemplar the
// request earns, and a loadgen warning's trace_id greps straight into a
// saved /debug/requests dump. A zero N disables stamping.
type idStamper struct {
	every int
	t     *trace.Tracer
	seq   atomic.Uint64
}

func newIDStamper(every int) *idStamper {
	if every <= 0 {
		return &idStamper{}
	}
	// A capacity-1 tracer: it never records spans client-side, it only
	// binds fabricated identities into contexts for wire encoding.
	return &idStamper{every: every, t: trace.New(trace.Config{Capacity: 1})}
}

// stamp returns the context for op i: sampled ops carry a fresh trace id.
func (s *idStamper) stamp(i int) trace.SpanContext {
	if s.every <= 0 || i%s.every != 0 {
		return trace.SpanContext{}
	}
	return s.t.Join(s.seq.Add(1), 0, true)
}

// failWarner rate-limits request-failure warnings: every failure counts,
// but only the first few and then every 1024th log, so a dead server
// doesn't turn the log into a firehose.
type failWarner struct{ n atomic.Int64 }

func (fw *failWarner) warn(logger *slog.Logger, method string, sc trace.SpanContext, err error) {
	n := fw.n.Add(1)
	if n > 8 && n%1024 != 0 {
		return
	}
	logger.Warn("request failed", "method", method, "err", err,
		"trace_id", sc.TraceID(), "span_id", sc.SpanID(), "failures", n)
}

func opMethod(op workload.Op) string {
	if op.Kind == workload.Read {
		return "app.Read"
	}
	return "app.Write"
}

func runLoad(logger *slog.Logger, fatal func(string, ...any), ids *idStamper, gen workload.Generator, reg *telemetry.Registry, target string, ops, concurrency int) {
	// Pre-draw the operation stream (generators are not concurrency-safe
	// and pre-drawing keeps the hot loop allocation-light).
	stream := make([]workload.Op, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}

	// Per-op latency feeds the registry so a scrape mid-run reports live
	// percentiles; the client connections feed per-message rpc metrics.
	reqHist := reg.Histogram("request.latency", "seconds")
	connMetrics := rpc.NewMetrics(reg, "tcp")
	conns := make([]*rpc.Client, concurrency)
	for i := range conns {
		c, err := rpc.Dial(target, nil, nil, rpc.CostModel{})
		if err != nil {
			fatal("dial", "target", target, "err", err)
		}
		c.SetMetrics(connMetrics)
		conns[i] = c
		defer c.Close()
	}

	var next atomic.Int64
	var fw failWarner
	latencies := make([][]time.Duration, concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := conns[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				op := stream[i]
				sc := ids.stamp(i)
				start := time.Now()
				if err := callOp(conn, sc, op, time.Time{}); err != nil {
					fw.warn(logger, opMethod(op), sc, err)
					continue
				}
				d := time.Since(start)
				reqHist.Observe(int64(d))
				latencies[w] = append(latencies[w], d)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Printf("workload=%s ops=%d failures=%d elapsed=%v\n",
		gen.Name(), len(all), fw.n.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
}

// timedOp is one dispatched open-loop operation.
type timedOp struct {
	op       workload.Op
	sc       trace.SpanContext
	intended time.Time
	deadline time.Time
}

// callOp issues one op on conn under sc, attaching the deadline (when
// set) so the server's admission gate can act on it.
func callOp(conn *rpc.Client, sc trace.SpanContext, op workload.Op, deadline time.Time) error {
	if !deadline.IsZero() {
		sc = sc.WithDeadline(deadline)
	}
	var err error
	if op.Kind == workload.Read {
		_, err = conn.CallCtx(sc, "app.Read", wire.Marshal(&remotecache.GetRequest{Key: op.Key}))
	} else {
		_, err = conn.CallCtx(sc, "app.Write", wire.Marshal(&remotecache.SetRequest{
			Key:   op.Key,
			Value: core.ValueFor(op.Key, op.ValueSize),
		}))
	}
	return err
}

// runOpenLoop drives the target from a deterministic arrival schedule:
// the same open-loop mechanics as the in-process experiment driver
// (bounded lanes, dispatcher pacing, dual-clock recording), over real
// sockets.
func runOpenLoop(logger *slog.Logger, fatal func(string, ...any), ids *idStamper, gen workload.Generator, reg *telemetry.Registry, target string, ops, lanes int, acfg workload.ArrivalConfig, slo time.Duration, depth int) {
	stream := make([]workload.Op, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}
	sched, err := workload.BuildSchedule(acfg, ops)
	if err != nil {
		fatal("schedule", "err", err)
	}

	reqHist := reg.Histogram("request.latency", "seconds")
	connMetrics := rpc.NewMetrics(reg, "tcp")
	conns := make([]*rpc.Client, lanes)
	for i := range conns {
		c, err := rpc.Dial(target, nil, nil, rpc.CostModel{})
		if err != nil {
			fatal("dial", "target", target, "err", err)
		}
		c.SetMetrics(connMetrics)
		conns[i] = c
		defer c.Close()
	}

	type laneRec struct {
		intended, send []time.Duration
		executed       int
	}
	var fw failWarner
	recs := make([]laneRec, lanes)
	chans := make([]chan timedOp, lanes)
	var wg sync.WaitGroup
	for w := 0; w < lanes; w++ {
		chans[w] = make(chan timedOp, depth)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := &recs[w]
			for to := range chans[w] {
				sendT0 := time.Now()
				if err := callOp(conns[w], to.sc, to.op, to.deadline); err != nil {
					fw.warn(logger, opMethod(to.op), to.sc, err)
					continue
				}
				done := time.Now()
				rec.executed++
				dIntended := done.Sub(to.intended)
				reqHist.Observe(int64(dIntended))
				rec.intended = append(rec.intended, dIntended)
				rec.send = append(rec.send, done.Sub(sendT0))
			}
		}(w)
	}

	// Dispatch each op at its intended instant; a full lane sheds the op
	// client-side (bounded buffers keep a dead server from eating RAM).
	var clientShed int64
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		tgt := t0.Add(sched.Offset(i))
		for {
			rem := time.Until(tgt)
			if rem <= 0 {
				break
			}
			if rem > 200*time.Microsecond {
				time.Sleep(rem - 100*time.Microsecond)
			} else {
				runtime.Gosched()
			}
		}
		var deadline time.Time
		if slo > 0 {
			deadline = tgt.Add(slo)
		}
		select {
		case chans[i%lanes] <- timedOp{op: stream[i], sc: ids.stamp(i), intended: tgt, deadline: deadline}:
		default:
			clientShed++
		}
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	wall := time.Since(t0)

	var intended, send []time.Duration
	executed := 0
	for i := range recs {
		intended = append(intended, recs[i].intended...)
		send = append(send, recs[i].send...)
		executed += recs[i].executed
	}
	sort.Slice(intended, func(i, j int) bool { return intended[i] < intended[j] })
	sort.Slice(send, func(i, j int) bool { return send[i] < send[j] })
	pct := func(s []time.Duration, p float64) time.Duration {
		if len(s) == 0 {
			return 0
		}
		return s[int(p*float64(len(s)-1))]
	}

	fmt.Printf("workload=%s arrival=%s offered=%d executed=%d client_shed=%d failures=%d\n",
		gen.Name(), sched.Name(), ops, executed, clientShed, fw.n.Load())
	fmt.Printf("offered rate: %.0f ops/s (schedule span %v, wall %v)\n",
		sched.OfferedQPS(), sched.Span().Round(time.Millisecond), wall.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s (executed / schedule span)\n",
		float64(executed)/sched.Span().Seconds())
	fmt.Printf("latency (intended-arrival clock, CO-free): p50=%v p90=%v p99=%v max=%v\n",
		pct(intended, 0.50), pct(intended, 0.90), pct(intended, 0.99), pct(intended, 1.0))
	fmt.Printf("latency (send clock, for contrast):        p50=%v p90=%v p99=%v max=%v\n",
		pct(send, 0.50), pct(send, 0.90), pct(send, 0.99), pct(send, 1.0))
	if slo > 0 {
		late := 0
		for _, d := range intended {
			if d > slo {
				late++
			}
		}
		fmt.Printf("slo=%v: %d/%d executed ops (%.2f%%) finished past budget\n",
			slo, late, executed, 100*float64(late)/float64(max(executed, 1)))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
