// Command loadgen drives an appserver with one of the paper's workloads
// over real sockets and reports throughput and latency percentiles.
//
//	loadgen -target localhost:7001 -workload synthetic -ops 50000 -concurrency 8
//	loadgen -target localhost:7001 -trace trace.bin -ops 50000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cachecost/internal/core"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/wire"
	"cachecost/internal/workload"
)

func main() {
	var (
		target      = flag.String("target", "localhost:7001", "appserver address")
		wl          = flag.String("workload", "synthetic", "workload: synthetic|meta")
		keys        = flag.Int("keys", 2000, "key population (must match appserver preload)")
		readRatio   = flag.Float64("readratio", 0.9, "read fraction (synthetic)")
		alpha       = flag.Float64("alpha", 1.2, "zipfian skew")
		valueSize   = flag.Int("valuesize", 1024, "value size (synthetic)")
		ops         = flag.Int("ops", 20000, "operations to issue")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		seed        = flag.Int64("seed", 1, "workload seed")
		traceFile   = flag.String("trace", "", "replay a recorded trace (see cmd/tracegen)")
		metrics     = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz and /debug/pprof on this address")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	// Fail startup on a bad -metrics address, before issuing any load.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{Registry: reg})
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer msrv.Close()
		log.Printf("loadgen: serving metrics on http://%s/metrics", msrv.Addr)
	}

	var gen workload.Generator
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		rep, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		gen = rep
	} else {
		gen = buildGenerator(*wl, *keys, *alpha, *readRatio, *valueSize, *seed)
	}
	runLoad(gen, reg, *target, *ops, *concurrency)
}

func buildGenerator(wl string, keys int, alpha, readRatio float64, valueSize int, seed int64) workload.Generator {
	switch wl {
	case "synthetic":
		return workload.NewSynthetic(workload.SyntheticConfig{
			Keys: keys, Alpha: alpha, ReadRatio: readRatio, ValueSize: valueSize, Seed: seed,
		})
	case "meta":
		return workload.NewMetaKV(workload.MetaKVConfig{Keys: keys, Seed: seed})
	default:
		log.Fatalf("loadgen: unknown workload %q", wl)
		return nil
	}
}

func runLoad(gen workload.Generator, reg *telemetry.Registry, target string, ops, concurrency int) {
	// Pre-draw the operation stream (generators are not concurrency-safe
	// and pre-drawing keeps the hot loop allocation-light).
	stream := make([]workload.Op, ops)
	for i := range stream {
		stream[i] = gen.Next()
	}

	// Per-op latency feeds the registry so a scrape mid-run reports live
	// percentiles; the client connections feed per-message rpc metrics.
	reqHist := reg.Histogram("request.latency", "seconds")
	connMetrics := rpc.NewMetrics(reg, "tcp")
	conns := make([]*rpc.Client, concurrency)
	for i := range conns {
		c, err := rpc.Dial(target, nil, nil, rpc.CostModel{})
		if err != nil {
			log.Fatalf("loadgen: dial: %v", err)
		}
		c.SetMetrics(connMetrics)
		conns[i] = c
		defer c.Close()
	}

	var next atomic.Int64
	var failures atomic.Int64
	latencies := make([][]time.Duration, concurrency)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn := conns[w]
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					return
				}
				op := stream[i]
				start := time.Now()
				var err error
				if op.Kind == workload.Read {
					_, err = conn.Call("app.Read", wire.Marshal(&remotecache.GetRequest{Key: op.Key}))
				} else {
					_, err = conn.Call("app.Write", wire.Marshal(&remotecache.SetRequest{
						Key:   op.Key,
						Value: core.ValueFor(op.Key, op.ValueSize),
					}))
				}
				if err != nil {
					failures.Add(1)
					continue
				}
				d := time.Since(start)
				reqHist.Observe(int64(d))
				latencies[w] = append(latencies[w], d)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Printf("workload=%s ops=%d failures=%d elapsed=%v\n",
		gen.Name(), len(all), failures.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f ops/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
}
