// Command tracegen records workload traces to files and analyzes them —
// the Figure 3 style distribution summary for any trace, generated or
// converted from external captures.
//
//	tracegen -out trace.bin -workload unity -ops 100000
//	tracegen -in trace.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"cachecost/internal/telemetry"
	"cachecost/internal/workload"
)

func main() {
	var (
		out       = flag.String("out", "", "record: output trace file")
		in        = flag.String("in", "", "analyze: input trace file")
		wl        = flag.String("workload", "synthetic", "workload: synthetic|meta|unity")
		ops       = flag.Int("ops", 100_000, "operations to record")
		keys      = flag.Int("keys", 100_000, "key population")
		alpha     = flag.Float64("alpha", 1.2, "zipfian skew")
		readRatio = flag.Float64("readratio", 0.9, "read fraction (synthetic)")
		valueSize = flag.Int("valuesize", 1024, "value size (synthetic)")
		seed      = flag.Int64("seed", 1, "generator seed")
		logfmt    = flag.String("logfmt", "text", "log format: text|json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(*logfmt, "tracegen")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	switch {
	case *out != "":
		var gen workload.Generator
		switch *wl {
		case "synthetic":
			gen = workload.NewSynthetic(workload.SyntheticConfig{
				Keys: *keys, Alpha: *alpha, ReadRatio: *readRatio, ValueSize: *valueSize, Seed: *seed,
			})
		case "meta":
			gen = workload.NewMetaKV(workload.MetaKVConfig{Keys: *keys, Seed: *seed})
		case "unity":
			gen = workload.NewUnity(workload.UnityConfig{Tables: *keys, Seed: *seed})
		default:
			fatal("unknown workload", "workload", *wl)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal("create", "err", err)
		}
		defer f.Close()
		if err := workload.WriteTrace(f, gen, *ops); err != nil {
			fatal("write trace", "err", err)
		}
		fmt.Printf("recorded %d %s operations to %s\n", *ops, gen.Name(), *out)

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal("open", "err", err)
		}
		defer f.Close()
		rep, err := workload.ReadTrace(f)
		if err != nil {
			fatal("read trace", "err", err)
		}
		st := workload.Analyze(rep, rep.Len())
		fmt.Printf("trace %s: %s\n", *in, st)
		fmt.Printf("value sizes: p50=%dB p90=%dB p99=%dB max=%dB\n",
			st.SizeP50, st.SizeP90, st.SizeP99, st.SizeMax)
		for _, k := range []int{1, 10, 100} {
			fmt.Printf("top-%d key share: %.1f%%\n", k, 100*st.TopKShare(k))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}
