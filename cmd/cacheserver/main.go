// Command cacheserver runs one remote cache node (memcached-style) as a
// real network service.
//
//	cacheserver -addr :7201 -mem 268435456
//
// It serves the RPC methods cache.Get, cache.Set and cache.Delete;
// cmd/appserver and internal/remotecache.Client speak its protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/remotecache"
	"cachecost/internal/shardmgr"
	"cachecost/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":7201", "listen address")
		mem        = flag.Int64("mem", 256<<20, "cache capacity in bytes")
		shards     = flag.Int("shards", 16, "lock shards")
		statsEvery = flag.Duration("stats", 30*time.Second, "stats logging interval (0 = off)")
		metrics    = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz, /debug/pprof and /debug/requests on this address")
		hotK       = flag.Int("hotkeys", 32, "track the node's top-k hot keys and report them on /statusz (0 = off)")
		logfmt     = flag.String("logfmt", "text", "log format: text|json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(*logfmt, "cacheserver")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	m := meter.NewMeter()
	reg := telemetry.NewRegistry()
	telemetry.RegisterMeter(reg, "meter", m)
	fr := flight.New(flight.Config{CPUCoreMonthUSD: meter.GCP.CPUCoreMonth})
	// Fail startup on a bad -metrics address, before serving traffic.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{
			Registry: reg, Meter: m, Prices: meter.GCP,
			Debug: map[string]http.Handler{"/debug/requests": flight.Handler(fr)},
		})
		if err != nil {
			fatal("metrics endpoint", "err", err)
		}
		defer msrv.Close()
		logger.Info("serving metrics", "url", "http://"+msrv.Addr+"/metrics")
	}
	// An optional hot-key detector on the serve path: constant memory,
	// no effect on correctness — it only feeds the /statusz report an
	// operator reads when deciding whether this node needs relief.
	var det *shardmgr.Detector
	if *hotK > 0 {
		det = shardmgr.NewDetector(8 * *hotK)
		k := *hotK
		reg.RegisterStatus("hotkeys", func(w io.Writer) {
			fmt.Fprintf(w, "hot keys (top %d of %d observed gets, count [±err]):\n", k, det.Ops())
			for _, hk := range det.TopK(k) {
				fmt.Fprintf(w, "  %-40q %d [±%d]\n", hk.Key, hk.Count, hk.Err)
			}
		})
	}
	srvCfg := remotecache.ServerConfig{
		CapacityBytes: *mem,
		Shards:        *shards,
		Meter:         m,
		Telemetry:     reg,
	}
	if det != nil {
		srvCfg.Hot = det
	}
	srv := remotecache.NewServer(srvCfg)
	// The node's own front door records every cache RPC it serves, so a
	// slow Get is attributable here even when the appserver's view only
	// says "cache was slow".
	srv.RPCServer().SetFlight(fr.Scope("cache"))

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	logger.Info("listening", "capacity_mib", *mem>>20, "addr", l.Addr().String())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Stats()
				logger.Info("cache stats",
					"hits", st.Hits, "misses", st.Misses,
					"hit_ratio", st.HitRatio(), "used_kib", srv.UsedBytes()>>10)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println(meter.BuildReport(m, meter.GCP))
		srv.RPCServer().Close()
		os.Exit(0)
	}()

	if err := srv.RPCServer().Serve(l); err != nil {
		fatal("serve", "err", err)
	}
}
