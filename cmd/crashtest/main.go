// crashtest is the kill-loop harness pinning the durable kv engine's
// recovery guarantee: every acknowledged write survives process death,
// and no torn record is ever served.
//
// The harness re-execs itself as a writer child against one on-disk
// store directory. The child appends batches of deterministic records
// (key and value both derived from the sequence number alone), calls
// Sync, and only then prints "ACK <seq>" — so an ACK the parent has
// read implies the batch was durable before the child could die. The
// parent SIGKILLs the child at a seeded random point; some iterations
// stretch every fsync with a wall-clock sleep so the kill lands
// mid-fsync, and some hand the child a torn-write injection so it
// dies, mid-record, by its own crash-only panic instead of a signal.
// After each death the parent reopens the directory and checks
//
//  1. recovery succeeds,
//  2. every key an acknowledged write created still exists and holds a
//     value at least as new as the last acknowledged write to it,
//  3. every surviving record — acked or not — byte-matches its
//     re-derivation from the sequence number (nothing torn is served).
//
// State accumulates across iterations, so each recovery runs on top of
// all previous crashes. Usage:
//
//	go run ./cmd/crashtest -n 200        # local soak
//	go run -race ./cmd/crashtest -n 25   # CI smoke
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cachecost/internal/fault"
	"cachecost/internal/storage/kv"
)

const keyspace = 1024 // writes wrap: key = seq mod keyspace

var (
	flagN     = flag.Int("n", 200, "kill-loop iterations")
	flagSeed  = flag.Int64("seed", 1, "base seed for kill timing and fault choice")
	flagDir   = flag.String("dir", "", "store directory (default: fresh temp dir)")
	flagBatch = flag.Int("batch", 8, "writes per acknowledged batch")
	flagV     = flag.Bool("v", false, "per-iteration progress")

	// child-mode flags
	flagChild = flag.Bool("child", false, "internal: run as the writer child")
	flagStart = flag.Int64("start", 0, "internal: first sequence number")
	flagStall = flag.Duration("stall", 0, "internal: per-fsync sleep")
	flagTorn  = flag.Int64("torn", 0, "internal: tear the Nth write call")
)

func main() {
	flag.Parse()
	if *flagChild {
		childMain()
		return
	}
	if err := parentMain(); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: FAIL: %v\n", err)
		os.Exit(1)
	}
}

// splitmix is the value/length derivation PRNG — the same function the
// verifier uses, so a record is checkable from its sequence number.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func keyFor(seq int64) []byte {
	return []byte(fmt.Sprintf("k%06d", seq%keyspace))
}

// valFor derives record seq's value: a parseable "v<seq>." header
// followed by pseudo-random filler. Any bit out of place fails the
// byte-compare in verify — that is the torn-record detector.
func valFor(seq int64) []byte {
	h := splitmix(uint64(seq))
	v := []byte(fmt.Sprintf("v%d.", seq))
	n := len(v) + 16 + int(h%481)
	s := splitmix(h)
	for len(v) < n {
		s = splitmix(s)
		v = append(v, byte(s))
	}
	return v
}

// seqOf recovers the sequence number from a stored value.
func seqOf(val []byte) (int64, bool) {
	if len(val) < 3 || val[0] != 'v' {
		return 0, false
	}
	dot := bytes.IndexByte(val, '.')
	if dot < 2 {
		return 0, false
	}
	seq, err := strconv.ParseInt(string(val[1:dot]), 10, 64)
	return seq, err == nil
}

func childMain() {
	inner, err := kv.DirFS(*flagDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: %v\n", err)
		os.Exit(2)
	}
	ffs := (*fault.Injector)(nil).NewFS(inner, fault.FSOptions{
		SyncSleep:      *flagStall,
		TornWriteAfter: *flagTorn,
	})
	// Small budgets keep flush and compaction in the kill window, so
	// crashes land during every phase of the engine's lifecycle, not
	// just WAL appends. A torn write makes the engine panic (crash-only
	// durability: a failed write promises nothing), which is exactly
	// the process death the parent wants to observe.
	s, err := kv.Open(kv.Config{
		FS:            ffs,
		CacheBytes:    16 << 10,
		MemtableBytes: 32 << 10,
		WALSyncEvery:  *flagBatch,
		CompactAt:     3,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "child: open: %v\n", err)
		os.Exit(2)
	}
	out := bufio.NewWriter(os.Stdout)
	for seq := *flagStart; ; {
		for j := 0; j < *flagBatch; j++ {
			s.Put(keyFor(seq), valFor(seq))
			seq++
		}
		if err := s.Sync(); err != nil {
			fmt.Fprintf(os.Stderr, "child: sync: %v\n", err)
			os.Exit(2)
		}
		// The ACK leaves this process only after Sync has returned:
		// anything the parent reads is durable.
		fmt.Fprintf(out, "ACK %d\n", seq-1)
		out.Flush()
	}
}

func parentMain() error {
	dir := *flagDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "crashtest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*flagSeed))

	var (
		acked      int64 = -1 // highest ACK ever read
		nextStart  int64
		totalAcks  int64
		kills, stallKills, tornDeaths int
	)
	for i := 0; i < *flagN; i++ {
		args := []string{"-child", "-dir", dir,
			"-start", strconv.FormatInt(nextStart, 10),
			"-batch", strconv.Itoa(*flagBatch)}
		mode := "kill"
		var torn bool
		switch {
		case i%5 == 4: // die by torn write: crash-only panic mid-record
			args = append(args, "-torn", strconv.FormatInt(int64(20+rng.Intn(400)), 10))
			mode, torn = "torn", true
			tornDeaths++
		case i%3 == 1: // stretch fsyncs so the SIGKILL lands inside one
			args = append(args, "-stall", "3ms")
			mode = "stall"
			stallKills++
		default:
			kills++
		}

		cmd := exec.Command(self, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		var lastAck atomic.Int64
		lastAck.Store(-1)
		var nAcks atomic.Int64
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				var seq int64
				if _, err := fmt.Sscanf(sc.Text(), "ACK %d", &seq); err == nil {
					lastAck.Store(seq)
					nAcks.Add(1)
				}
			}
		}()

		time.Sleep(time.Duration(5+rng.Intn(45)) * time.Millisecond)
		cmd.Process.Kill() // no-op if the torn write already killed it
		cmd.Wait()
		<-drained
		if !torn && strings.Contains(stderr.String(), "panic:") {
			return fmt.Errorf("iter %d: child crashed on a healthy filesystem:\n%s", i, stderr.String())
		}
		if a := lastAck.Load(); a > acked {
			acked = a
		}
		totalAcks += nAcks.Load()

		maxSeq, err := verify(dir, acked)
		if err != nil {
			return fmt.Errorf("iter %d (%s, acked through %d): %w", i, mode, acked, err)
		}
		nextStart = maxSeq + 1
		if *flagV || (i+1)%25 == 0 {
			fmt.Printf("iter %4d/%d: %s, acked through seq %d, store at seq %d — ok\n",
				i+1, *flagN, mode, acked, maxSeq)
		}
	}
	if totalAcks == 0 {
		return fmt.Errorf("no batch was ever acknowledged — harness is not exercising the engine")
	}
	fmt.Printf("crashtest: PASS — %d iterations (%d SIGKILL, %d mid-fsync, %d torn-write deaths), %d acked batches, 0 acked writes lost, 0 torn records served\n",
		*flagN, kills, stallKills, tornDeaths, totalAcks)
	return nil
}

// verify reopens the store and checks the two recovery invariants
// against everything acknowledged so far. It returns the highest
// sequence number found, so the next child resumes numbering past any
// unacknowledged-but-durable tail.
func verify(dir string, acked int64) (maxSeq int64, err error) {
	fs, err := kv.DirFS(dir)
	if err != nil {
		return 0, err
	}
	s, err := kv.Open(kv.Config{FS: fs, CacheBytes: 16 << 10, MemtableBytes: 32 << 10, CompactAt: 3})
	if err != nil {
		return 0, fmt.Errorf("recovery failed: %w", err)
	}
	defer s.Close()

	// Invariant 1: nothing torn is served. Every surviving record must
	// byte-match its re-derivation, acknowledged or not.
	maxSeq = -1
	for _, it := range s.Scan(nil, nil, 0) {
		seq, ok := seqOf(it.Value)
		if !ok {
			return 0, fmt.Errorf("key %q holds unparseable (torn?) value %q", it.Key, truncate(it.Value))
		}
		if !bytes.Equal(it.Key, keyFor(seq)) {
			return 0, fmt.Errorf("key %q holds record %d, which belongs at %q", it.Key, seq, keyFor(seq))
		}
		if !bytes.Equal(it.Value, valFor(seq)) {
			return 0, fmt.Errorf("record %d at key %q is corrupt: got %q", seq, it.Key, truncate(it.Value))
		}
		if seq > maxSeq {
			maxSeq = seq
		}
	}

	// Invariant 2: every acked write survives. With wrapping keys that
	// means: each key an acked write created exists, holding a record
	// no older than the last acked write to it.
	if acked >= 0 {
		hi := acked
		if hi > keyspace-1 {
			hi = keyspace - 1
		}
		for k := int64(0); k <= hi; k++ {
			val, _, ok := s.Get(keyFor(k))
			if !ok {
				return 0, fmt.Errorf("acked key %q lost", keyFor(k))
			}
			seq, _ := seqOf(val)
			if floor := acked - (acked-k)%keyspace; seq < floor {
				return 0, fmt.Errorf("key %q rolled back: holds record %d, last acked write was %d",
					keyFor(k), seq, floor)
			}
		}
	}
	return maxSeq, nil
}

func truncate(b []byte) []byte {
	if len(b) > 48 {
		return b[:48]
	}
	return b
}
