// Command appserver runs the application tier under one of the paper's
// caching architectures, connected to remote storeserver and (for the
// Remote architecture) cacheserver processes.
//
//	appserver -addr :7001 -arch linked -store localhost:7101
//	appserver -addr :7001 -arch remote -store localhost:7101 -cache localhost:7201
//
// It serves app.Read / app.Write (see cmd/loadgen) and prints a cost
// report on SIGINT.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cachecost/internal/core"
	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/workload"
)

func parseArch(s string) (core.Arch, error) {
	switch strings.ToLower(s) {
	case "base":
		return core.Base, nil
	case "remote":
		return core.Remote, nil
	case "linked":
		return core.Linked, nil
	case "linked-version", "linkedversion":
		return core.LinkedVersion, nil
	case "linked-owned", "linkedowned":
		return core.LinkedOwned, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (base|remote|linked|linked-version|linked-owned)", s)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":7001", "listen address")
		archName  = flag.String("arch", "linked", "caching architecture")
		storeAddr = flag.String("store", "localhost:7101", "storeserver address")
		cacheAddr = flag.String("cache", "", "cacheserver address (Remote architecture)")
		appCache  = flag.Int64("appcache", 64<<20, "linked cache bytes (s_A)")
		poolSize  = flag.Int("pool", 4, "connections per downstream endpoint")
		preload   = flag.Int("preload", 0, "preload N keys before serving")
		valueSize = flag.Int("valuesize", 1024, "preloaded value size")
		metrics   = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz, /debug/pprof and /debug/requests on this address")
		inflight  = flag.Int("maxinflight", 0, "admission gate: concurrent request slots (0 = no admission control)")
		queue     = flag.Int("queuedepth", 0, "admission gate: bounded wait-queue depth behind the slots")
		logfmt    = flag.String("logfmt", "text", "log format: text|json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(*logfmt, "appserver")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	arch, err := parseArch(*archName)
	if err != nil {
		fatal("bad -arch", "err", err)
	}

	m := meter.NewMeter()
	reg := telemetry.NewRegistry()
	telemetry.RegisterMeter(reg, "meter", m)
	// The flight recorder is always on: the front door attributes every
	// request's latency by stage and the tail sampler retains exemplars
	// for the slowest and every bad outcome, served on /debug/requests.
	fr := flight.New(flight.Config{CPUCoreMonthUSD: meter.GCP.CPUCoreMonth})
	// Bind the ops endpoint before dialing or serving anything: a bad
	// -metrics address must fail startup, not surface as a missing scrape
	// after the service is already taking traffic.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{
			Registry: reg, Meter: m, Prices: meter.GCP,
			Debug: map[string]http.Handler{"/debug/requests": flight.Handler(fr)},
		})
		if err != nil {
			fatal("metrics endpoint", "err", err)
		}
		defer msrv.Close()
		logger.Info("serving metrics", "url", "http://"+msrv.Addr+"/metrics")
	}
	appComp := m.Component("app")
	dbConn, err := rpc.DialPool(*storeAddr, *poolSize, appComp, meter.NewBurner(), rpc.DefaultCost)
	if err != nil {
		fatal("dial store", "addr", *storeAddr, "err", err)
	}
	dbConn.SetMetrics(rpc.NewMetrics(reg, "tcp"))
	eps := core.RemoteEndpoints{DB: dbConn}
	if arch == core.Remote {
		if *cacheAddr == "" {
			fatal("-cache is required for -arch remote")
		}
		cacheConn, err := rpc.DialPool(*cacheAddr, *poolSize, appComp, meter.NewBurner(), rpc.DefaultCost)
		if err != nil {
			fatal("dial cache", "addr", *cacheAddr, "err", err)
		}
		cacheConn.SetMetrics(rpc.NewMetrics(reg, "tcp"))
		eps.Cache = cacheConn
	}

	svcCfg := core.ServiceConfig{
		Arch:          arch,
		Meter:         m,
		AppCacheBytes: *appCache,
		Telemetry:     reg,
		Flight:        fr,
	}
	if *inflight > 0 {
		svcCfg.Admission = &core.AdmissionConfig{MaxInflight: *inflight, QueueDepth: *queue}
		logger.Info("admission gate armed", "slots", *inflight, "queue_depth", *queue)
	}
	svc, err := core.NewKVServiceRemote(svcCfg, eps)
	if err != nil {
		fatal("service", "err", err)
	}
	svc.Front().SetMetrics(rpc.NewMetrics(reg, "server"))

	if *preload > 0 {
		logger.Info("preloading", "keys", *preload, "value_size", *valueSize)
		items := make([]core.PreloadItem, *preload)
		for i := range items {
			items[i] = core.PreloadItem{Key: workload.KeyName(i), Size: *valueSize}
		}
		if err := svc.Preload(items); err != nil {
			fatal("preload", "err", err)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	logger.Info("listening", "arch", arch.String(), "store", *storeAddr, "addr", l.Addr().String())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println(meter.BuildReport(m, meter.GCP))
		warnSlowest(logger, fr)
		svc.Front().Close()
		os.Exit(0)
	}()

	if err := svc.Front().Serve(l); err != nil {
		fatal("serve", "err", err)
	}
}

// warnSlowest logs the worst retained exemplar on shutdown with its
// trace identity, so the last thing in the log correlates with the last
// /debug/requests snapshot an operator may have saved.
func warnSlowest(logger *slog.Logger, fr *flight.Recorder) {
	ex := fr.Exemplars()
	if len(ex.Slowest) == 0 {
		return
	}
	r := &ex.Slowest[0].Record
	logger.Warn("slowest retained request",
		"method", r.Method,
		"dur_ms", float64(r.Dur)/1e6,
		"dominant_stage", r.DominantStage().String(),
		"outcome", r.Outcome().String(),
		"trace_id", r.TraceID,
		"span_id", r.SpanID)
}
