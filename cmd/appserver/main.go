// Command appserver runs the application tier under one of the paper's
// caching architectures, connected to remote storeserver and (for the
// Remote architecture) cacheserver processes.
//
//	appserver -addr :7001 -arch linked -store localhost:7101
//	appserver -addr :7001 -arch remote -store localhost:7101 -cache localhost:7201
//
// It serves app.Read / app.Write (see cmd/loadgen) and prints a cost
// report on SIGINT.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cachecost/internal/core"
	"cachecost/internal/meter"
	"cachecost/internal/rpc"
	"cachecost/internal/telemetry"
	"cachecost/internal/workload"
)

func parseArch(s string) (core.Arch, error) {
	switch strings.ToLower(s) {
	case "base":
		return core.Base, nil
	case "remote":
		return core.Remote, nil
	case "linked":
		return core.Linked, nil
	case "linked-version", "linkedversion":
		return core.LinkedVersion, nil
	case "linked-owned", "linkedowned":
		return core.LinkedOwned, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (base|remote|linked|linked-version|linked-owned)", s)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":7001", "listen address")
		archName  = flag.String("arch", "linked", "caching architecture")
		storeAddr = flag.String("store", "localhost:7101", "storeserver address")
		cacheAddr = flag.String("cache", "", "cacheserver address (Remote architecture)")
		appCache  = flag.Int64("appcache", 64<<20, "linked cache bytes (s_A)")
		poolSize  = flag.Int("pool", 4, "connections per downstream endpoint")
		preload   = flag.Int("preload", 0, "preload N keys before serving")
		valueSize = flag.Int("valuesize", 1024, "preloaded value size")
		metrics   = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz and /debug/pprof on this address")
		inflight  = flag.Int("maxinflight", 0, "admission gate: concurrent request slots (0 = no admission control)")
		queue     = flag.Int("queuedepth", 0, "admission gate: bounded wait-queue depth behind the slots")
	)
	flag.Parse()

	arch, err := parseArch(*archName)
	if err != nil {
		log.Fatalf("appserver: %v", err)
	}

	m := meter.NewMeter()
	reg := telemetry.NewRegistry()
	telemetry.RegisterMeter(reg, "meter", m)
	// Bind the ops endpoint before dialing or serving anything: a bad
	// -metrics address must fail startup, not surface as a missing scrape
	// after the service is already taking traffic.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{Registry: reg, Meter: m, Prices: meter.GCP})
		if err != nil {
			log.Fatalf("appserver: %v", err)
		}
		defer msrv.Close()
		log.Printf("appserver: serving metrics on http://%s/metrics", msrv.Addr)
	}
	appComp := m.Component("app")
	dbConn, err := rpc.DialPool(*storeAddr, *poolSize, appComp, meter.NewBurner(), rpc.DefaultCost)
	if err != nil {
		log.Fatalf("appserver: dial store: %v", err)
	}
	dbConn.SetMetrics(rpc.NewMetrics(reg, "tcp"))
	eps := core.RemoteEndpoints{DB: dbConn}
	if arch == core.Remote {
		if *cacheAddr == "" {
			log.Fatal("appserver: -cache is required for -arch remote")
		}
		cacheConn, err := rpc.DialPool(*cacheAddr, *poolSize, appComp, meter.NewBurner(), rpc.DefaultCost)
		if err != nil {
			log.Fatalf("appserver: dial cache: %v", err)
		}
		cacheConn.SetMetrics(rpc.NewMetrics(reg, "tcp"))
		eps.Cache = cacheConn
	}

	svcCfg := core.ServiceConfig{
		Arch:          arch,
		Meter:         m,
		AppCacheBytes: *appCache,
		Telemetry:     reg,
	}
	if *inflight > 0 {
		svcCfg.Admission = &core.AdmissionConfig{MaxInflight: *inflight, QueueDepth: *queue}
		log.Printf("appserver: admission gate: %d slots, queue depth %d", *inflight, *queue)
	}
	svc, err := core.NewKVServiceRemote(svcCfg, eps)
	if err != nil {
		log.Fatalf("appserver: %v", err)
	}
	svc.Front().SetMetrics(rpc.NewMetrics(reg, "server"))

	if *preload > 0 {
		log.Printf("appserver: preloading %d keys of %d bytes", *preload, *valueSize)
		items := make([]core.PreloadItem, *preload)
		for i := range items {
			items[i] = core.PreloadItem{Key: workload.KeyName(i), Size: *valueSize}
		}
		if err := svc.Preload(items); err != nil {
			log.Fatalf("appserver: preload: %v", err)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("appserver: %v", err)
	}
	log.Printf("appserver: arch=%v store=%s listening on %s", arch, *storeAddr, l.Addr())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println(meter.BuildReport(m, meter.GCP))
		svc.Front().Close()
		os.Exit(0)
	}()

	if err := svc.Front().Serve(l); err != nil {
		log.Fatalf("appserver: %v", err)
	}
}
