package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fastArgs shrinks every population so a figure cell finishes in
// milliseconds; tests exercise the CLI plumbing, not the estimates.
var fastArgs = []string{"-ops", "60", "-warmup", "20", "-keys", "60", "-tables", "20"}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListExitsZero(t *testing.T) {
	code, stdout, _ := runCLI(t, "list")
	if code != 0 {
		t.Fatalf("list exited %d", code)
	}
	if !strings.Contains(stdout, "fig2a") {
		t.Fatalf("list output missing figures:\n%s", stdout)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-nosuchflag"},
		{"fig-does-not-exist"},
	} {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Errorf("args %v exited %d, want 2 (stderr: %s)", args, code, stderr)
		}
	}
}

// The batch figure runs through the -figure/-batchsizes flag form and
// emits one row per (arch, B) cell.
func TestBatchFigureFlags(t *testing.T) {
	code, stdout, stderr := runCLI(t, append([]string{"-json", "-figure", "batch", "-batchsizes", "1,4"}, fastArgs...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var tables []struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(stdout), &tables); err != nil {
		t.Fatalf("-json emitted invalid JSON: %v\n%s", err, stdout)
	}
	if len(tables) != 1 || tables[0].ID != "batch" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	if len(tables[0].Rows) != 6 { // 3 archs x 2 batch sizes
		t.Fatalf("rows = %d, want 6:\n%v", len(tables[0].Rows), tables[0].Rows)
	}
}

func TestBadBatchSizesExitTwo(t *testing.T) {
	for _, bad := range []string{"0", "-3", "x", ","} {
		code, _, stderr := runCLI(t, "-batchsizes", bad, "batch")
		if code != 2 {
			t.Errorf("-batchsizes %q exited %d, want 2 (stderr: %s)", bad, code, stderr)
		}
	}
}

// An unwritable output path must fail the run up front — before any
// experiment burns minutes — with the path named on stderr.
func TestUnwritableOutputFailsBeforeRunning(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	for _, flagName := range []string{"-out", "-trace"} {
		code, _, stderr := runCLI(t, append([]string{flagName, bad}, append(fastArgs, "fig2a")...)...)
		if code != 1 {
			t.Errorf("%s to unwritable path exited %d, want 1", flagName, code)
		}
		if !strings.Contains(stderr, bad) || !strings.Contains(stderr, "cannot write output") {
			t.Errorf("%s error does not name the path:\n%s", flagName, stderr)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runCLI(t, append([]string{"-json"}, append(fastArgs, "fig2a")...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var tables []struct {
		ID     string     `json:"id"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(stdout), &tables); err != nil {
		t.Fatalf("-json emitted invalid JSON: %v\n%s", err, stdout)
	}
	if len(tables) != 1 || tables[0].ID != "fig2a" || len(tables[0].Rows) == 0 {
		t.Fatalf("unexpected tables: %+v", tables)
	}
}

func TestOutFileReceivesTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tables.txt")
	code, stdout, stderr := runCLI(t, append([]string{"-out", path}, append(fastArgs, "fig2a")...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("-out still wrote to stdout:\n%s", stdout)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "fig2a") {
		t.Fatalf("table file missing figure output:\n%s", b)
	}
}

// TestTraceFileIsChromeLoadable runs an experiment-backed figure with
// -trace and checks the emitted file is a Chrome trace-event array with
// the request-path span names.
func TestTraceFileIsChromeLoadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, stderr := runCLI(t, append([]string{"-trace", path}, append(fastArgs, "fig4a")...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if err := json.Unmarshal(b, &events); err != nil {
		t.Fatalf("-trace emitted invalid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace file holds no events")
	}
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event phase %q, want X", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"request.read", "app.read"} {
		if !names[want] {
			t.Errorf("trace file missing %q spans (have %v)", want, names)
		}
	}
}

// A bad -metrics address must fail the run up front, before any
// experiment burns minutes — the same contract as -out and -trace.
func TestBadMetricsAddrFailsBeforeRunning(t *testing.T) {
	code, _, stderr := runCLI(t, append([]string{"-metrics", "256.256.256.256:1"}, append(fastArgs, "fig2a")...)...)
	if code != 1 {
		t.Fatalf("bad -metrics exited %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "cannot bind metrics address") || !strings.Contains(stderr, "256.256.256.256:1") {
		t.Fatalf("-metrics error does not name the address:\n%s", stderr)
	}
}

// TestJSONCellsCarryPathAndHists checks the -json cell stream: every
// experiment-backed cell reports its exact path counters (with no -trace
// flag — they are always exact) and its measured latency digests.
func TestJSONCellsCarryPathAndHists(t *testing.T) {
	code, stdout, stderr := runCLI(t, append([]string{"-json"}, append(fastArgs, "fig5b")...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var tables []struct {
		ID    string `json:"id"`
		Cells []struct {
			Cell   string `json:"cell"`
			Result struct {
				Ops  int `json:"Ops"`
				Path struct {
					Requests int64 `json:"Requests"`
					RPCHops  int64 `json:"RPCHops"`
				} `json:"Path"`
				Hists []struct {
					Name  string `json:"name"`
					Count int64  `json:"count"`
					P99   int64  `json:"p99"`
				} `json:"Hists"`
			} `json:"result"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(stdout), &tables); err != nil {
		t.Fatalf("-json emitted invalid JSON: %v\n%s", err, stdout)
	}
	if len(tables) != 1 || len(tables[0].Cells) == 0 {
		t.Fatalf("no cells in -json output: %+v", tables)
	}
	for _, c := range tables[0].Cells {
		r := c.Result
		if r.Path.Requests == 0 || r.Path.RPCHops == 0 {
			t.Errorf("cell %s: path counters empty without -trace; they are always exact (%+v)", c.Cell, r.Path)
		}
		var sawReq bool
		for _, h := range r.Hists {
			if h.Name == "request.latency" {
				sawReq = true
				if h.Count != int64(r.Ops) {
					t.Errorf("cell %s: request.latency count %d != ops %d", c.Cell, h.Count, r.Ops)
				}
				if h.P99 <= 0 {
					t.Errorf("cell %s: request.latency p99 = %d", c.Cell, h.P99)
				}
			}
		}
		if !sawReq {
			t.Errorf("cell %s has no request.latency digest (hists: %+v)", c.Cell, r.Hists)
		}
	}
}

// TestSnapshotFileIsJSONL runs a figure with -snapshot and checks the
// recorder appended parseable JSONL lines (at minimum the final flush).
func TestSnapshotFileIsJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.jsonl")
	code, _, stderr := runCLI(t, append([]string{"-snapshot", path}, append(fastArgs, "fig5b")...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("snapshot file is empty")
	}
	var last struct {
		TS       string             `json:"ts"`
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("snapshot line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if last.TS == "" {
		t.Fatal("snapshot line has no timestamp")
	}
}

// TestMetricsEndpointServesDuringRun binds an ephemeral ops endpoint and
// scrapes it after the run completes (the server stays up for the
// process lifetime of run()'s caller; here we scrape in-flight via the
// figure's own duration being too short, so instead just assert the
// bind+serve lifecycle succeeded and the run exited clean).
func TestMetricsFlagBindsAndRuns(t *testing.T) {
	code, _, stderr := runCLI(t, append([]string{"-metrics", "127.0.0.1:0"}, append(fastArgs, "fig2a")...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "serving metrics on http://") {
		t.Fatalf("no serving banner on stderr:\n%s", stderr)
	}
}

// The overload figure runs through -offered/-arrival/-slo and emits one
// row per (arch, offered load), with the shed columns present.
func TestOverloadFigureFlags(t *testing.T) {
	code, stdout, stderr := runCLI(t, append([]string{
		"-json", "-figure", "overload", "-offered", "0.4,2.5", "-arrival", "bursty", "-slo", "20ms",
	}, fastArgs...)...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var tables []struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(stdout), &tables); err != nil {
		t.Fatalf("-json emitted invalid JSON: %v\n%s", err, stdout)
	}
	if len(tables) != 1 || tables[0].ID != "overload" {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	if len(tables[0].Rows) != 6 { // 3 archs x 2 offered loads
		t.Fatalf("rows = %d, want 6:\n%v", len(tables[0].Rows), tables[0].Rows)
	}
	if !strings.Contains(tables[0].Title, "bursty") {
		t.Fatalf("-arrival bursty not reflected in title: %q", tables[0].Title)
	}
	want := []string{"arch", "load_x", "offered_qps", "goodput_qps"}
	for i, col := range want {
		if tables[0].Header[i] != col {
			t.Fatalf("header = %v, want prefix %v", tables[0].Header, want)
		}
	}
}

func TestBadOverloadFlagsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{"-offered", "0", "overload"},
		{"-offered", "x", "overload"},
		{"-offered", ",", "overload"},
		{"-arrival", "sawtooth", "overload"},
	} {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Errorf("args %v exited %d, want 2 (stderr: %s)", args, code, stderr)
		}
	}
}
