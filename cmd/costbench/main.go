// Command costbench regenerates every table and figure of "Rethinking
// the Cost of Distributed Caches for Datacenter Services" (HotNets '25)
// against the simulated testbed in this repository.
//
// Usage:
//
//	costbench [flags] <figure>...
//	costbench [flags] all
//	costbench list
//
// Figures: fig2a fig2b fig3 fig4a fig4b fig5a fig5b fig6 fig7 fig8
// consistency marginal.
//
// The default scale finishes in tens of seconds; raise -ops / -keys /
// -tables to tighten estimates at the cost of runtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cachecost/internal/core"
)

func main() {
	var (
		ops         = flag.Int("ops", 3000, "metered operations per experiment cell")
		warmup      = flag.Int("warmup", 1000, "unmetered warmup operations per cell")
		keys        = flag.Int("keys", 2000, "synthetic key population (paper: 100000)")
		tables      = flag.Int("tables", 300, "catalog table population")
		seed        = flag.Int64("seed", 1, "workload seed")
		replicas    = flag.Int("appreplicas", 3, "application servers carrying the linked cache")
		faultRate   = flag.Float64("faultrate", -1, "cache fault rate for the chaos figure (-1 = default sweep)")
		parallelism = flag.Int("parallelism", 1, "concurrent driver workers per experiment cell")
		jsonOut     = flag.Bool("json", false, "emit tables as a JSON array on stdout")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: costbench [flags] <figure>...|all|list\n\nfigures:\n")
		for _, f := range core.Figures {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", f.ID, f.Title)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	opts := core.FigOptions{
		Ops:         *ops,
		Warmup:      *warmup,
		Keys:        *keys,
		Tables:      *tables,
		Seed:        *seed,
		AppReplicas: *replicas,
		Parallelism: *parallelism,
	}
	if *faultRate >= 0 {
		opts.FaultRates = []float64{*faultRate}
	}

	if args[0] == "list" {
		for _, f := range core.Figures {
			fmt.Printf("%-12s %s\n", f.ID, f.Title)
		}
		return
	}

	var figs []core.Figure
	if args[0] == "all" {
		figs = core.Figures
	} else {
		for _, id := range args {
			f, err := core.FigureByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			figs = append(figs, f)
		}
	}

	// jsonTable is the machine-readable form of one regenerated table.
	type jsonTable struct {
		ID          string     `json:"id"`
		Title       string     `json:"title"`
		Header      []string   `json:"header"`
		Rows        [][]string `json:"rows"`
		Notes       []string   `json:"notes,omitempty"`
		Parallelism int        `json:"parallelism"`
		ElapsedMS   int64      `json:"elapsed_ms"`
	}
	var out []jsonTable

	for _, f := range figs {
		t0 := time.Now()
		table, err := f.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "costbench: %s: %v\n", f.ID, err)
			os.Exit(1)
		}
		elapsed := time.Since(t0)
		if *jsonOut {
			out = append(out, jsonTable{
				ID:          table.ID,
				Title:       table.Title,
				Header:      table.Header,
				Rows:        table.Rows,
				Notes:       table.Notes,
				Parallelism: *parallelism,
				ElapsedMS:   elapsed.Milliseconds(),
			})
			continue
		}
		fmt.Println(table.String())
		fmt.Printf("(%s regenerated in %v)\n\n", f.ID, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "costbench: %v\n", err)
			os.Exit(1)
		}
	}
}
