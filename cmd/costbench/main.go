// Command costbench regenerates every table and figure of "Rethinking
// the Cost of Distributed Caches for Datacenter Services" (HotNets '25)
// against the simulated testbed in this repository.
//
// Usage:
//
//	costbench [flags] <figure>...
//	costbench [flags] all
//	costbench list
//
// Figures: fig2a fig2b fig3 fig4a fig4b fig5a fig5b fig6 fig7 fig8
// consistency marginal.
//
// The default scale finishes in tens of seconds; raise -ops / -keys /
// -tables to tighten estimates at the cost of runtime.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"cachecost/internal/core"
	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/telemetry"
	"cachecost/internal/trace"
	"cachecost/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parseBatchSizes parses the -batchsizes flag: a comma-separated list of
// positive batch sizes.
func parseBatchSizes(s string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("batch sizes must be positive integers")
		}
		sizes = append(sizes, n)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("no batch sizes given")
	}
	return sizes, nil
}

// parseLoads parses the -offered flag: a comma-separated list of
// positive offered-load multipliers.
func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("offered-load multipliers must be positive numbers")
		}
		loads = append(loads, v)
	}
	if len(loads) == 0 {
		return nil, fmt.Errorf("no offered-load multipliers given")
	}
	return loads, nil
}

// createOutput opens path for writing, verifying up front that the path
// is writable so a misspelled directory fails the run instead of
// silently discarding the results.
func createOutput(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cannot write output: %w", err)
	}
	return f, nil
}

// run is main's testable body: it parses argv, regenerates the requested
// figures and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("costbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ops         = fs.Int("ops", 3000, "metered operations per experiment cell")
		warmup      = fs.Int("warmup", 1000, "unmetered warmup operations per cell")
		keys        = fs.Int("keys", 2000, "synthetic key population (paper: 100000)")
		tables      = fs.Int("tables", 300, "catalog table population")
		seed        = fs.Int64("seed", 1, "workload seed")
		replicas    = fs.Int("appreplicas", 3, "application servers carrying the linked cache")
		faultRate   = fs.Float64("faultrate", -1, "cache fault rate for the chaos figure (-1 = default sweep)")
		figure      = fs.String("figure", "", "figure to regenerate (alternative to the positional form)")
		batchSizes  = fs.String("batchsizes", "", "comma-separated batch sizes for the batch figure (default sweep: 1,2,4,8,16,32)")
		parallelism = fs.Int("parallelism", 1, "concurrent driver workers per experiment cell")
		jsonOut     = fs.Bool("json", false, "emit tables as a JSON array instead of text")
		outPath     = fs.String("out", "", "write table output to this file instead of stdout")
		tracePath   = fs.String("trace", "", "trace every cell and write the sampled traces as Chrome trace-event JSON to this file")
		traceSample = fs.Int("tracesample", 1, "with -trace, record spans for 1 in N requests")
		traceBuf    = fs.Int("tracebuf", 64, "with -trace, retain the last N completed traces")
		offered     = fs.String("offered", "", "comma-separated offered-load multipliers of closed-loop capacity for the overload figure (default sweep: 0.3,0.6,1.5,3)")
		slo         = fs.Duration("slo", 0, "per-request latency budget for the overload figure (0 = derive from the capacity probe)")
		arrival     = fs.String("arrival", "", "arrival process for the overload figure: poisson, bursty or diurnal (default poisson)")
		metricsAddr = fs.String("metrics", "", "serve /metrics, /metrics.json, /statusz, /debug/pprof and /debug/requests on this address while figures run")
		snapPath    = fs.String("snapshot", "", "append timestamped telemetry deltas to this JSONL file while figures run")
		snapIvl     = fs.Duration("snapshot-interval", time.Second, "with -snapshot, the recording interval")
		stall       = fs.Duration("storagestall", 0, "inject a wall-clock stall of this length on storage round trips in the tailwhy figure")
		stallRate   = fs.Float64("stallrate", 0, "with -storagestall, the probability a storage call stalls (0 = every call)")
		dumpDir     = fs.String("flightdump", "", "run the SLO burn-rate watchdog, writing black-box dumps under this directory")
		dumpIvl     = fs.Duration("flightdump-interval", time.Second, "with -flightdump, the watchdog's evaluation interval")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: costbench [flags] <figure>...|all|list\n\nfigures:\n")
		for _, f := range core.Figures {
			fmt.Fprintf(stderr, "  %-12s %s\n", f.ID, f.Title)
		}
		fmt.Fprintf(stderr, "\nflags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	args := fs.Args()
	if *figure != "" {
		args = append(args, *figure)
	}
	if len(args) == 0 {
		fs.Usage()
		return 2
	}

	opts := core.FigOptions{
		Ops:         *ops,
		Warmup:      *warmup,
		Keys:        *keys,
		Tables:      *tables,
		Seed:        *seed,
		AppReplicas: *replicas,
		Parallelism: *parallelism,
	}
	if *faultRate >= 0 {
		opts.FaultRates = []float64{*faultRate}
	}
	if *batchSizes != "" {
		sizes, err := parseBatchSizes(*batchSizes)
		if err != nil {
			fmt.Fprintf(stderr, "costbench: -batchsizes %s: %v\n", *batchSizes, err)
			return 2
		}
		opts.BatchSizes = sizes
	}
	if *offered != "" {
		loads, err := parseLoads(*offered)
		if err != nil {
			fmt.Fprintf(stderr, "costbench: -offered %s: %v\n", *offered, err)
			return 2
		}
		opts.OfferedLoads = loads
	}
	opts.SLO = *slo
	if *arrival != "" {
		if _, err := workload.ParseArrivalProcess(*arrival); err != nil {
			fmt.Fprintf(stderr, "costbench: -arrival: %v\n", err)
			return 2
		}
		opts.Arrival = *arrival
	}
	// Telemetry is always on: the registry's record paths cost almost
	// nothing, and every cell's result then carries measured percentiles
	// (-json) whether or not an ops endpoint is serving.
	reg := telemetry.NewRegistry()
	opts.Telemetry = reg
	// So is the flight recorder: its unsampled fast path is a nil test
	// plus a pooled breakdown, and /debug/requests (with -metrics) and
	// the tailwhy figure both read from it.
	fr := flight.New(flight.Config{CPUCoreMonthUSD: meter.GCP.CPUCoreMonth})
	opts.Flight = fr
	opts.StorageStall = *stall
	opts.StorageStallRate = *stallRate

	if args[0] == "list" {
		for _, f := range core.Figures {
			fmt.Fprintf(stdout, "%-12s %s\n", f.ID, f.Title)
		}
		return 0
	}

	var figs []core.Figure
	if args[0] == "all" {
		figs = core.Figures
	} else {
		for _, id := range args {
			f, err := core.FigureByID(id)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			figs = append(figs, f)
		}
	}

	// Open every output up front: an unwritable path must fail the run
	// before minutes of experiments, not silently discard their results.
	var tableOut io.Writer = stdout
	var outFile io.WriteCloser
	if *outPath != "" {
		f, err := createOutput(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "costbench: -out %s: %v\n", *outPath, err)
			return 1
		}
		outFile = f
		tableOut = f
	}
	var traceOut io.WriteCloser
	if *tracePath != "" {
		f, err := createOutput(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "costbench: -trace %s: %v\n", *tracePath, err)
			return 1
		}
		defer f.Close()
		traceOut = f
		opts.Tracer = trace.New(trace.Config{SampleEvery: *traceSample, Capacity: *traceBuf})
	} else {
		// The per-request path counters are exact regardless of span
		// sampling, so every run carries a tracer; without -trace it
		// samples (effectively) nothing and exports nowhere, but cells
		// still report hops/statements/ships in -json output.
		opts.Tracer = trace.New(trace.Config{SampleEvery: 1 << 30, Capacity: 1})
	}

	// The ops endpoint binds before any experiment runs: a bad -metrics
	// address must fail the run up front, like an unwritable -out.
	if *metricsAddr != "" {
		srv, err := telemetry.StartOps(*metricsAddr, telemetry.OpsConfig{
			Registry: reg,
			Debug:    map[string]http.Handler{"/debug/requests": flight.Handler(fr)},
		})
		if err != nil {
			fmt.Fprintf(stderr, "costbench: -metrics %s: %v\n", *metricsAddr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "costbench: serving metrics on http://%s/metrics\n", srv.Addr)
	}
	if *dumpDir != "" {
		wd := flight.NewWatchdog(flight.WatchdogConfig{
			Registry: reg,
			Recorder: fr,
			Dir:      *dumpDir,
		})
		stop, done := make(chan struct{}), make(chan struct{})
		go wd.Run(*dumpIvl, stop, done)
		defer func() { close(stop); <-done }()
	}
	if *snapPath != "" {
		f, err := createOutput(*snapPath)
		if err != nil {
			fmt.Fprintf(stderr, "costbench: -snapshot %s: %v\n", *snapPath, err)
			return 1
		}
		defer f.Close()
		rec := telemetry.NewRecorder(reg, f)
		stop, done := make(chan struct{}), make(chan struct{})
		go rec.Run(*snapIvl, stop, done)
		defer func() { close(stop); <-done }()
	}

	// jsonCell is one experiment cell's full result inside a jsonTable:
	// the priced outcome plus the always-exact path counters and the
	// telemetry registry's measured per-component latency digests.
	type jsonCell struct {
		Cell   string          `json:"cell"`
		Result *core.RunResult `json:"result"`
	}
	// jsonTable is the machine-readable form of one regenerated table.
	type jsonTable struct {
		ID          string     `json:"id"`
		Title       string     `json:"title"`
		Header      []string   `json:"header"`
		Rows        [][]string `json:"rows"`
		Notes       []string   `json:"notes,omitempty"`
		Parallelism int        `json:"parallelism"`
		ElapsedMS   int64      `json:"elapsed_ms"`
		Cells       []jsonCell `json:"cells,omitempty"`
	}
	var out []jsonTable

	for _, f := range figs {
		var cells []jsonCell
		if *jsonOut {
			opts.OnResult = func(cell string, res *core.RunResult) {
				cells = append(cells, jsonCell{Cell: cell, Result: res})
			}
		}
		t0 := time.Now()
		var table *core.Table
		var err error
		// Label the run for CPU profiles: -metrics' /debug/pprof/profile
		// samples can then be sliced by figure (and, within open-loop
		// cells, by arch and lane).
		pprof.Do(context.Background(), pprof.Labels("figure", f.ID), func(context.Context) {
			table, err = f.Run(opts)
		})
		if err != nil {
			fmt.Fprintf(stderr, "costbench: %s: %v\n", f.ID, err)
			return 1
		}
		elapsed := time.Since(t0)
		if *jsonOut {
			out = append(out, jsonTable{
				ID:          table.ID,
				Title:       table.Title,
				Header:      table.Header,
				Rows:        table.Rows,
				Notes:       table.Notes,
				Parallelism: *parallelism,
				ElapsedMS:   elapsed.Milliseconds(),
				Cells:       cells,
			})
			continue
		}
		if _, err := fmt.Fprintf(tableOut, "%s\n(%s regenerated in %v)\n\n",
			table.String(), f.ID, elapsed.Round(time.Millisecond)); err != nil {
			fmt.Fprintf(stderr, "costbench: writing tables: %v\n", err)
			return 1
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(tableOut)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "costbench: writing tables: %v\n", err)
			return 1
		}
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintf(stderr, "costbench: -out %s: %v\n", *outPath, err)
			return 1
		}
	}
	if traceOut != nil {
		if err := trace.ExportChrome(traceOut, opts.Tracer.Traces()); err != nil {
			fmt.Fprintf(stderr, "costbench: -trace %s: %v\n", *tracePath, err)
			return 1
		}
		if err := traceOut.Close(); err != nil {
			fmt.Fprintf(stderr, "costbench: -trace %s: %v\n", *tracePath, err)
			return 1
		}
	}
	return 0
}
