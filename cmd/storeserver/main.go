// Command storeserver runs one mini-TiDB database node group (SQL
// front-end + replicated paged KV engine with block caches) as a real
// network service, for driving the caching architectures across actual
// processes and sockets.
//
//	storeserver -addr :7101 -replicas 3 -blockcache 67108864
//
// The node serves the RPC methods sql.Query, sql.Exec and sql.Version;
// cmd/appserver and internal/storage.Client speak its protocol.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cachecost/internal/meter"
	"cachecost/internal/storage"
	"cachecost/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":7101", "listen address")
		replicas   = flag.Int("replicas", 3, "replication factor (raft group size)")
		blockCache = flag.Int64("blockcache", 64<<20, "block cache bytes per replica (s_D)")
		pageBytes  = flag.Int("pagebytes", 16<<10, "storage page size")
		statsEvery = flag.Duration("stats", 30*time.Second, "stats logging interval (0 = off)")
		metrics    = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz and /debug/pprof on this address")
	)
	flag.Parse()

	m := meter.NewMeter()
	reg := telemetry.NewRegistry()
	telemetry.RegisterMeter(reg, "meter", m)
	// Fail startup on a bad -metrics address, before serving traffic.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{Registry: reg, Meter: m, Prices: meter.GCP})
		if err != nil {
			log.Fatalf("storeserver: %v", err)
		}
		defer msrv.Close()
		log.Printf("storeserver: serving metrics on http://%s/metrics", msrv.Addr)
	}
	node := storage.NewNode(storage.Config{
		Replicas:        *replicas,
		BlockCacheBytes: *blockCache,
		PageBytes:       *pageBytes,
		Meter:           m,
		Telemetry:       reg,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("storeserver: %v", err)
	}
	log.Printf("storeserver: %d replicas, %d MiB block cache/replica, listening on %s",
		*replicas, *blockCache>>20, l.Addr())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				rep := meter.BuildReport(m, meter.GCP)
				log.Printf("storeserver: %d ops, %.3f cores busy, data %d KiB",
					rep.Requests, rep.ComponentCores(""), node.DataBytes()>>10)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println(meter.BuildReport(m, meter.GCP))
		node.Server().Close()
		os.Exit(0)
	}()

	if err := node.Server().Serve(l); err != nil {
		log.Fatalf("storeserver: %v", err)
	}
}
