// Command storeserver runs one mini-TiDB database node group (SQL
// front-end + replicated paged KV engine with block caches) as a real
// network service, for driving the caching architectures across actual
// processes and sockets.
//
//	storeserver -addr :7101 -replicas 3 -blockcache 67108864
//
// The node serves the RPC methods sql.Query, sql.Exec and sql.Version;
// cmd/appserver and internal/storage.Client speak its protocol.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cachecost/internal/flight"
	"cachecost/internal/meter"
	"cachecost/internal/storage"
	"cachecost/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", ":7101", "listen address")
		replicas   = flag.Int("replicas", 3, "replication factor (raft group size)")
		blockCache = flag.Int64("blockcache", 64<<20, "block cache bytes per replica (s_D)")
		pageBytes  = flag.Int("pagebytes", 16<<10, "storage page size")
		statsEvery = flag.Duration("stats", 30*time.Second, "stats logging interval (0 = off)")
		metrics    = flag.String("metrics", "", "serve /metrics, /metrics.json, /statusz, /debug/pprof and /debug/requests on this address")
		logfmt     = flag.String("logfmt", "text", "log format: text|json")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(*logfmt, "storeserver")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	m := meter.NewMeter()
	reg := telemetry.NewRegistry()
	telemetry.RegisterMeter(reg, "meter", m)
	fr := flight.New(flight.Config{CPUCoreMonthUSD: meter.GCP.CPUCoreMonth})
	// Fail startup on a bad -metrics address, before serving traffic.
	if *metrics != "" {
		msrv, err := telemetry.StartOps(*metrics, telemetry.OpsConfig{
			Registry: reg, Meter: m, Prices: meter.GCP,
			Debug: map[string]http.Handler{"/debug/requests": flight.Handler(fr)},
		})
		if err != nil {
			fatal("metrics endpoint", "err", err)
		}
		defer msrv.Close()
		logger.Info("serving metrics", "url", "http://"+msrv.Addr+"/metrics")
	}
	node := storage.NewNode(storage.Config{
		Replicas:        *replicas,
		BlockCacheBytes: *blockCache,
		PageBytes:       *pageBytes,
		Meter:           m,
		Telemetry:       reg,
	})
	// Record every SQL RPC this node serves: a raft-ship stall shows up
	// here as a storage/raft-dominant exemplar even when the appserver
	// only sees an opaque slow round trip.
	node.Server().SetFlight(fr.Scope("store"))

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", "addr", *addr, "err", err)
	}
	logger.Info("listening",
		"replicas", *replicas, "blockcache_mib", *blockCache>>20, "addr", l.Addr().String())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				rep := meter.BuildReport(m, meter.GCP)
				logger.Info("store stats",
					"ops", rep.Requests, "cores_busy", rep.ComponentCores(""),
					"data_kib", node.DataBytes()>>10)
			}
		}()
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println(meter.BuildReport(m, meter.GCP))
		node.Server().Close()
		os.Exit(0)
	}()

	if err := node.Server().Serve(l); err != nil {
		fatal("serve", "err", err)
	}
}
