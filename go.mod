module cachecost

go 1.22
