package cachecost_test

// Chaos integration tests: the fault layer injected into real component
// wirings — the in-process experiment assembly used by costbench, and the
// full TCP cluster — asserting the paper's availability claim end to end:
// cache-tier faults degrade cost and hit ratio, never correctness.

import (
	"bytes"
	"fmt"
	"testing"

	"cachecost/internal/core"
	"cachecost/internal/fault"
	"cachecost/internal/meter"
	"cachecost/internal/remotecache"
	"cachecost/internal/rpc"
	"cachecost/internal/storage"
	"cachecost/internal/wire"
	"cachecost/internal/workload"
)

// TestChaosAcceptance is the issue's headline bar, run through the same
// cells as `costbench chaos`: with a 10% cache-node error rate plus a
// kill/revive window, Remote and Linked complete with zero client-visible
// errors, a nonzero degradation counter, and a cost per million requests
// between the fault-free value and Base's.
func TestChaosAcceptance(t *testing.T) {
	o := core.FigOptions{Ops: 1500, Warmup: 500, Keys: 800, Tables: 50, Seed: 3, AppReplicas: 3}
	wcfg := workload.SyntheticConfig{Keys: o.Keys, Alpha: 1.2, ReadRatio: 0.9, ValueSize: 1 << 10, Seed: o.Seed}

	base, err := o.ChaosCell(core.ChaosConfig{Arch: core.Base}, wcfg)
	if err != nil {
		t.Fatalf("base cell: %v", err)
	}
	for _, arch := range []core.Arch{core.Remote, core.Linked} {
		t.Run(arch.String(), func(t *testing.T) {
			free, err := o.ChaosCell(core.ChaosConfig{Arch: arch}, wcfg)
			if err != nil {
				t.Fatalf("fault-free cell: %v", err)
			}
			// ChaosCell surfaces any request failure as err: nil means the
			// service answered all 2000 driven ops.
			chaos, err := o.ChaosCell(core.ChaosConfig{
				Arch: arch, ErrorRate: 0.10, KillWindow: true, Retry: true,
			}, wcfg)
			if err != nil {
				t.Fatalf("10%% fault cell had a client-visible error: %v", err)
			}
			if chaos.Degraded == 0 {
				t.Error("degradation counter stayed zero under 10% faults")
			}
			if chaos.HitRatio >= free.HitRatio {
				t.Errorf("hit ratio did not degrade: %v faulty vs %v fault-free", chaos.HitRatio, free.HitRatio)
			}
			// The cost bar, with slack for wall-clock noise in the cheap
			// direction only: faults must not make the tier cheaper, and
			// must not cost more than having no cache tier at all.
			if chaos.CostPerMReq < free.CostPerMReq*0.95 {
				t.Errorf("cost/Mreq %v fell below the fault-free value %v", chaos.CostPerMReq, free.CostPerMReq)
			}
			if chaos.CostPerMReq > base.CostPerMReq {
				t.Errorf("cost/Mreq %v at 10%% faults exceeded Base's %v", chaos.CostPerMReq, base.CostPerMReq)
			}
		})
	}
}

// TestChaosClusterOverTCP wires the Remote architecture's processes over
// real sockets with the fault layer around the cache connection, kills
// the cache node mid-run, and requires every front-door request to keep
// succeeding with correct values.
func TestChaosClusterOverTCP(t *testing.T) {
	storeMeter := meter.NewMeter()
	node := storage.NewNode(storage.Config{
		Replicas:        3,
		BlockCacheBytes: 8 << 20,
		Meter:           storeMeter,
	})
	storeAddr := listen(t, node.Server())

	cacheSrv := remotecache.NewServer(remotecache.ServerConfig{CapacityBytes: 8 << 20})
	cacheAddr := listen(t, cacheSrv.RPCServer())

	appMeter := meter.NewMeter()
	inj := fault.New(5, fault.Options{Meter: appMeter})
	dbConn, err := rpc.Dial(storeAddr, appMeter.Component("app"), meter.NewBurner(), rpc.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	cacheConn, err := rpc.Dial(cacheAddr, appMeter.Component("app"), meter.NewBurner(), rpc.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := core.NewKVServiceRemote(core.ServiceConfig{
		Arch:       core.Remote,
		Meter:      appMeter,
		Faults:     inj,
		CacheRetry: &rpc.RetryPolicy{},
	}, core.RemoteEndpoints{DB: dbConn, Cache: cacheConn})
	if err != nil {
		t.Fatal(err)
	}
	inj.SetRule(core.CacheNode, fault.Rule{ErrorRate: 0.2, StallWork: 512})

	const keys = 60
	items := make([]core.PreloadItem, keys)
	for i := range items {
		items[i] = core.PreloadItem{Key: workload.KeyName(i), Size: 512}
	}
	if err := svc.Preload(items); err != nil {
		t.Fatal(err)
	}

	appAddr := listen(t, svc.Front())
	client, err := rpc.Dial(appAddr, nil, nil, rpc.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	read := func(i int) error {
		key := workload.KeyName(i % keys)
		respBody, err := client.Call("app.Read", wire.Marshal(&remotecache.GetRequest{Key: key}))
		if err != nil {
			return fmt.Errorf("read %s: %w", key, err)
		}
		var resp remotecache.GetResponse
		if err := wire.Unmarshal(respBody, &resp); err != nil {
			return err
		}
		if !bytes.Equal(resp.Value, core.Digest(core.ValueFor(key, 512))) {
			return fmt.Errorf("digest mismatch for %s under faults", key)
		}
		return nil
	}

	// Flaky cache → kill → revive, with reads throughout.
	for i := 0; i < 150; i++ {
		if err := read(i); err != nil {
			t.Fatalf("flaky phase: %v", err)
		}
	}
	inj.Kill(core.CacheNode)
	for i := 0; i < 150; i++ {
		if err := read(i); err != nil {
			t.Fatalf("cache-down phase: %v", err)
		}
	}
	inj.Revive(core.CacheNode)
	for i := 0; i < 150; i++ {
		if err := read(i); err != nil {
			t.Fatalf("healed phase: %v", err)
		}
	}

	if svc.Degraded() == 0 {
		t.Error("no degradations recorded despite injected faults")
	}
	st := inj.NodeStats(core.CacheNode)
	if st.InjectedErrors == 0 || st.DownRejects == 0 {
		t.Errorf("fault layer saw no traffic: %+v", st)
	}
	// The cache served real hits once healed (down rejects stop growing).
	healedStats := svc.RetryStats()
	if healedStats.Attempts == 0 {
		t.Error("retry layer never attempted a call")
	}
}
